"""Functional model of the on-the-fly bit-plane compressor (BPC, Fig. 12).

The BPC converts FP16 producer outputs (GeMM results, vector-unit
outputs) into the Anda format before they are written back to the
activation buffer.  It is organized as 16 parallel lanes, each handling
one 64-element group per pass:

1. the *FP field extractor* splits each FP16 input into sign, exponent
   and mantissa,
2. the *max exponent catcher* finds the group's shared exponent and each
   element's exponent difference,
3. the *parallel-to-serial mantissa aligner* emits one 64-bit mantissa
   bit plane per cycle: an element outputs its significand MSB once its
   exponent difference has counted down to zero, and ``0`` otherwise,
4. the *data packager* assembles sign words, shared exponents and the
   ``M`` emitted planes into the bit-plane layout.

This model is cycle-explicit — the aligner really iterates plane by
plane — and is validated bit-exact against the direct arithmetic encode
of :class:`repro.core.anda.AndaTensor` (truncation semantics fall out of
MSB-first serialization for free).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import fp16
from repro.core.anda import ANDA_GROUP_SIZE, AndaTensor
from repro.core.bitplane import BitPlaneStore, pack_signs
from repro.core.groups import to_groups
from repro.errors import FormatError

#: Number of parallel 64-element lanes in the hardware BPC.
DEFAULT_LANES = 16


@dataclass(frozen=True)
class CompressorStats:
    """Cycle accounting for one compression call.

    Attributes:
        groups: number of 64-element groups processed.
        passes: lane-batch passes (``ceil(groups / lanes)``).
        cycles: total aligner cycles (``passes * mantissa_bits``).
        lanes: configured lane count.
    """

    groups: int
    passes: int
    cycles: int
    lanes: int


class BitPlaneCompressor:
    """Cycle-explicit software model of the runtime bit-plane compressor.

    Args:
        lanes: parallel 64-element lanes (16 in the paper's design).
    """

    def __init__(self, lanes: int = DEFAULT_LANES) -> None:
        if lanes < 1:
            raise FormatError(f"BPC needs at least one lane, got {lanes}")
        self.lanes = lanes

    def compress(
        self, values: np.ndarray, mantissa_bits: int
    ) -> tuple[AndaTensor, CompressorStats]:
        """Compress a finite float tensor into an :class:`AndaTensor`.

        Returns the encoded tensor plus cycle statistics.  The encoding
        is bit-identical to ``AndaTensor.from_float(values,
        mantissa_bits)`` with truncation rounding.
        """
        grouped, layout = to_groups(np.asarray(values), ANDA_GROUP_SIZE)
        sign, exponent, significand = fp16.decompose(grouped)

        # Max exponent catcher: shared exponent and per-element difference.
        shared = exponent.max(axis=1)
        diff = np.where(significand > 0, shared[:, None] - exponent, mantissa_bits + 16)

        planes, emitted = self._serial_align(significand, diff, mantissa_bits)

        # Canonical sign for fully truncated elements (matches the
        # arithmetic encoder; the hardware packager masks signs of
        # all-zero mantissas the same way).
        sign = np.where(emitted == 0, 0, sign)
        store = BitPlaneStore(
            sign_words=pack_signs(sign),
            mantissa_planes=planes,
            exponents=shared.astype(np.int32),
            mantissa_bits=mantissa_bits,
        )
        tensor = AndaTensor(
            store=store, layout=layout, mantissa_bits=mantissa_bits
        )
        passes = -(-layout.n_groups // self.lanes)
        stats = CompressorStats(
            groups=layout.n_groups,
            passes=passes,
            cycles=passes * mantissa_bits,
            lanes=self.lanes,
        )
        return tensor, stats

    @staticmethod
    def _serial_align(
        significand: np.ndarray, diff: np.ndarray, mantissa_bits: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run the parallel-to-serial mantissa aligner cycle by cycle.

        Args:
            significand: ``(n_groups, 64)`` 11-bit significands.
            diff: per-element exponent differences (large sentinel for
                zero elements so they only ever emit zero bits).
            mantissa_bits: number of planes (cycles) to emit.

        Returns:
            ``(planes, mantissa)`` where ``planes`` is the
            ``(n_groups, M)`` packed plane words (MSB plane first) and
            ``mantissa`` the equivalent per-element integer magnitudes.
        """
        n_groups, group = significand.shape
        remaining = significand.astype(np.int64)
        countdown = diff.astype(np.int64).copy()
        positions = np.arange(group, dtype=np.uint64)
        msb = np.int64(1) << np.int64(fp16.SIGNIFICAND_BITS - 1)
        field = (np.int64(1) << np.int64(fp16.SIGNIFICAND_BITS)) - 1

        planes = np.empty((n_groups, mantissa_bits), dtype=np.uint64)
        mantissa = np.zeros((n_groups, group), dtype=np.int64)
        for _cycle in range(mantissa_bits):
            ready = countdown == 0
            bit = np.where(ready, (remaining & msb) != 0, False)
            # Shift out the consumed MSB on ready elements; tick the
            # countdown on the rest.
            remaining = np.where(ready, (remaining << 1) & field, remaining)
            countdown = np.where(ready, 0, countdown - 1)
            word = (bit.astype(np.uint64) << positions).sum(axis=1, dtype=np.uint64)
            planes[:, _cycle] = word
            mantissa = (mantissa << 1) | bit.astype(np.int64)
        return planes, mantissa
