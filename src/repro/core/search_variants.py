"""Alternative precision-search strategies, for comparison with Algorithm 1.

Sec. III-D of the paper motivates the adaptive search by contrast with
two families:

* **brute force** over the full combination space ("the search space
  for OPT-125M contains over 10,000 possible combinations", Fig. 9) —
  optimal but needs one calibration forward pass per combination;
* **layer-wise methods** ([18], [28], [76]) whose per-layer precision
  variables multiply the search dimensionality by the layer count,
  "significantly extending the deployment process".

This module implements those comparators plus two classical baselines
(random sampling, greedy coordinate descent) against the *same*
substrate-agnostic interface as :func:`repro.core.search.adaptive_precision_search`,
so strategies can be compared on evaluation counts — the unit the paper
uses, since each evaluation is one forward pass over the calibration
set.  The Fig. 9-style comparison bench and the strategy example are
built on :func:`compare_strategies`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.precision import PrecisionCombination
from repro.core.search import (
    AccuracyFn,
    BopsFn,
    SearchResult,
    adaptive_precision_search,
)
from repro.errors import SearchError

#: Mantissa range the strategies explore, matching Algorithm 1's seeds.
DEFAULT_BIT_RANGE: tuple[int, int] = (4, 13)


@dataclass(frozen=True)
class StrategyOutcome:
    """Result of one search strategy on one landscape.

    Attributes:
        strategy: display name.
        best: best feasible combination found (``None`` if infeasible).
        best_bops: its cost (``inf`` when infeasible).
        evaluations: accuracy evaluations spent (= calibration forward
            passes — the deployment-time currency).
    """

    strategy: str
    best: PrecisionCombination | None
    best_bops: float
    evaluations: int

    @property
    def feasible(self) -> bool:
        return self.best is not None


class _CountingEvaluator:
    """Wrap an accuracy function, counting calls (with memoization —
    re-evaluating a visited combination costs nothing at deploy time
    because the calibration result can be cached)."""

    def __init__(self, evaluate_accuracy: AccuracyFn) -> None:
        self._fn = evaluate_accuracy
        self._cache: dict[PrecisionCombination, float] = {}
        self.calls = 0

    def __call__(self, combination: PrecisionCombination) -> float:
        if combination not in self._cache:
            self.calls += 1
            self._cache[combination] = float(self._fn(combination))
        return self._cache[combination]


def _check_common(tolerance: float, bit_range: tuple[int, int]) -> None:
    low, high = bit_range
    if tolerance < 0:
        raise SearchError(f"tolerance must be >= 0, got {tolerance}")
    if not 1 <= low <= high <= 16:
        raise SearchError(f"bit range must satisfy 1 <= low <= high <= 16, got {bit_range}")


def brute_force_search(
    evaluate_accuracy: AccuracyFn,
    evaluate_bops: BopsFn,
    reference_accuracy: float,
    tolerance: float,
    bit_range: tuple[int, int] = DEFAULT_BIT_RANGE,
    max_evaluations: int | None = None,
) -> StrategyOutcome:
    """Exhaustive search over every 4-tuple in ``bit_range``.

    Candidates are enumerated in increasing-BOPs order so a
    ``max_evaluations`` cap behaves like the budget-limited variant a
    practitioner would actually run (best-cost-first screening).
    """
    _check_common(tolerance, bit_range)
    low, high = bit_range
    evaluator = _CountingEvaluator(evaluate_accuracy)
    threshold = (1.0 - tolerance) * reference_accuracy

    candidates = [
        PrecisionCombination(*bits)
        for bits in itertools.product(range(low, high + 1), repeat=4)
    ]
    candidates.sort(key=evaluate_bops)

    best: PrecisionCombination | None = None
    best_bops = float("inf")
    for combination in candidates:
        if max_evaluations is not None and evaluator.calls >= max_evaluations:
            break
        if evaluator(combination) >= threshold:
            # Sorted by BOPs: the first feasible candidate is optimal.
            best = combination
            best_bops = float(evaluate_bops(combination))
            break
    return StrategyOutcome("brute-force", best, best_bops, evaluator.calls)


def random_search(
    evaluate_accuracy: AccuracyFn,
    evaluate_bops: BopsFn,
    reference_accuracy: float,
    tolerance: float,
    max_evaluations: int = 32,
    bit_range: tuple[int, int] = DEFAULT_BIT_RANGE,
    seed: int = 0,
) -> StrategyOutcome:
    """Uniform random sampling of combinations within a budget."""
    _check_common(tolerance, bit_range)
    if max_evaluations < 1:
        raise SearchError(f"max_evaluations must be >= 1, got {max_evaluations}")
    low, high = bit_range
    rng = np.random.default_rng(seed)
    evaluator = _CountingEvaluator(evaluate_accuracy)
    threshold = (1.0 - tolerance) * reference_accuracy

    best: PrecisionCombination | None = None
    best_bops = float("inf")
    while evaluator.calls < max_evaluations:
        combination = PrecisionCombination(
            *(int(bit) for bit in rng.integers(low, high + 1, size=4))
        )
        accuracy = evaluator(combination)
        bops = float(evaluate_bops(combination))
        if accuracy >= threshold and bops < best_bops:
            best, best_bops = combination, bops
    return StrategyOutcome("random", best, best_bops, evaluator.calls)


def greedy_descent_search(
    evaluate_accuracy: AccuracyFn,
    evaluate_bops: BopsFn,
    reference_accuracy: float,
    tolerance: float,
    bit_range: tuple[int, int] = DEFAULT_BIT_RANGE,
    max_evaluations: int = 256,
) -> StrategyOutcome:
    """Coordinate descent from the most conservative combination.

    From ``[high, high, high, high]``, repeatedly take the single-step
    relaxation with the largest BOPs reduction that still meets the
    tolerance, until no coordinate can move.  This is the obvious
    hand-rolled heuristic; unlike Algorithm 1 it cannot *skip ahead*
    via the uniform seeds, so it spends evaluations walking down from
    FP-like precision one bit at a time.
    """
    _check_common(tolerance, bit_range)
    low, high = bit_range
    evaluator = _CountingEvaluator(evaluate_accuracy)
    threshold = (1.0 - tolerance) * reference_accuracy

    current = PrecisionCombination.uniform(high)
    if evaluator(current) < threshold:
        return StrategyOutcome("greedy-descent", None, float("inf"), evaluator.calls)

    improved = True
    while improved and evaluator.calls < max_evaluations:
        improved = False
        moves = [
            combo for combo in current.relaxations() if min(combo) >= low
        ]
        moves.sort(key=evaluate_bops)
        for move in moves:
            if evaluator.calls >= max_evaluations:
                break
            if evaluator(move) >= threshold:
                current = move
                improved = True
                break
    return StrategyOutcome(
        "greedy-descent", current, float(evaluate_bops(current)), evaluator.calls
    )


def adaptive_search_outcome(
    evaluate_accuracy: AccuracyFn,
    evaluate_bops: BopsFn,
    reference_accuracy: float,
    tolerance: float,
    max_iterations: int = 32,
) -> StrategyOutcome:
    """Algorithm 1, repackaged as a :class:`StrategyOutcome`."""
    result: SearchResult = adaptive_precision_search(
        evaluate_accuracy,
        evaluate_bops,
        reference_accuracy,
        tolerance,
        max_iterations=max_iterations,
    )
    return StrategyOutcome("adaptive (Alg. 1)", result.best, result.best_bops, result.iterations)


# -- layer-wise comparison ------------------------------------------------------

LayerwiseAccuracyFn = Callable[[Sequence[PrecisionCombination]], float]


@dataclass(frozen=True)
class LayerwiseOutcome:
    """Result of the layer-wise greedy search.

    Attributes:
        assignment: one combination per layer.
        bops: summed per-layer cost.
        evaluations: accuracy evaluations spent.
    """

    assignment: tuple[PrecisionCombination, ...]
    bops: float
    evaluations: int

    @property
    def mean_bits(self) -> float:
        return float(
            np.mean([bits for combo in self.assignment for bits in combo])
        )


def layer_wise_search(
    evaluate_accuracy: LayerwiseAccuracyFn,
    evaluate_bops: BopsFn,
    n_layers: int,
    reference_accuracy: float,
    tolerance: float,
    bit_range: tuple[int, int] = DEFAULT_BIT_RANGE,
    max_evaluations: int | None = None,
) -> LayerwiseOutcome:
    """Per-layer greedy precision assignment ([18], [28], [76] style).

    Every layer gets its own 4-tuple.  The search sweeps layers in
    order; for each layer it relaxes coordinates greedily while the
    *whole-model* accuracy stays within tolerance.  The point being
    demonstrated: the evaluation count scales with ``n_layers`` (each
    accepted bit costs at least one model evaluation), which is exactly
    why the paper's module-wise scope finishes in ~tens of passes while
    layer-wise methods need thousands.
    """
    _check_common(tolerance, bit_range)
    if n_layers < 1:
        raise SearchError(f"n_layers must be >= 1, got {n_layers}")
    low, high = bit_range
    threshold = (1.0 - tolerance) * reference_accuracy

    assignment = [PrecisionCombination.uniform(high) for _ in range(n_layers)]
    evaluations = 0

    def budget_left() -> bool:
        return max_evaluations is None or evaluations < max_evaluations

    for layer in range(n_layers):
        improved = True
        while improved and budget_left():
            improved = False
            moves = [
                combo
                for combo in assignment[layer].relaxations()
                if min(combo) >= low
            ]
            moves.sort(key=evaluate_bops)
            for move in moves:
                if not budget_left():
                    break
                trial = list(assignment)
                trial[layer] = move
                evaluations += 1
                if float(evaluate_accuracy(trial)) >= threshold:
                    assignment[layer] = move
                    improved = True
                    break
    total_bops = float(sum(evaluate_bops(combo) for combo in assignment))
    return LayerwiseOutcome(tuple(assignment), total_bops, evaluations)


# -- comparison harness -----------------------------------------------------------


def compare_strategies(
    evaluate_accuracy: AccuracyFn,
    evaluate_bops: BopsFn,
    reference_accuracy: float,
    tolerance: float,
    budget: int = 32,
    seed: int = 0,
) -> list[StrategyOutcome]:
    """Run every module-wise strategy on one landscape.

    The adaptive search and random search get the same ``budget``;
    greedy descent gets an uncapped walk (its natural cost); brute
    force runs to optimality so the others can be scored against the
    true optimum.
    """
    outcomes = [
        adaptive_search_outcome(
            evaluate_accuracy, evaluate_bops, reference_accuracy, tolerance, budget
        ),
        greedy_descent_search(
            evaluate_accuracy, evaluate_bops, reference_accuracy, tolerance
        ),
        random_search(
            evaluate_accuracy,
            evaluate_bops,
            reference_accuracy,
            tolerance,
            max_evaluations=budget,
            seed=seed,
        ),
        brute_force_search(
            evaluate_accuracy, evaluate_bops, reference_accuracy, tolerance
        ),
    ]
    return outcomes


def synthetic_landscape(
    seed: int = 0,
    noise: float = 0.0,
) -> tuple[AccuracyFn, BopsFn, float]:
    """A deterministic test landscape mimicking Fig. 6/7 sensitivities.

    Accuracy decays smoothly as bits shrink, with per-module
    sensitivities drawn from the seeded rng (QKV biased most
    sensitive, D least, matching the paper); BOPs is the sum of bits
    weighted by module MAC share.  Returns ``(accuracy_fn, bops_fn,
    reference_accuracy)``.
    """
    rng = np.random.default_rng(seed)
    base_sensitivity = np.array([1.6, 1.1, 0.9, 0.7])
    sensitivity = base_sensitivity * rng.uniform(0.8, 1.2, size=4)
    mac_share = np.array([3.0, 1.0, 2.0, 2.0])
    mac_share = mac_share / mac_share.sum()
    reference = 1.0

    def accuracy(combination: PrecisionCombination) -> float:
        bits = np.array(combination, dtype=np.float64)
        damage = np.sum(sensitivity * np.exp(-(bits - 3.0)))
        jitter = 0.0
        if noise:
            local = np.random.default_rng(hash(combination) % (2**32))
            jitter = noise * local.normal()
        return float(reference - 0.01 * damage + jitter)

    def bops(combination: PrecisionCombination) -> float:
        bits = np.array(combination, dtype=np.float64)
        return float(np.sum(mac_share * (bits + 1) * 4))

    return accuracy, bops, reference
