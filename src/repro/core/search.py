"""Adaptive precision combination search (Algorithm 1 of the paper).

A training-free, one-shot, compile-time search for the 4-tuple of
mantissa lengths ``[M_qkv, M_o, M_u, M_d]`` that minimizes BOPs while
keeping calibration accuracy within a user tolerance of the reference
(weight-only quantized) model.

The search is substrate-agnostic: it takes two callables — an accuracy
evaluator (higher is better) and a BOPs estimator — so unit tests drive
it with synthetic landscapes and the experiments drive it with real
model evaluations.  Structure mirrors the paper's pseudo-code:

1. seed a priority queue with uniform combinations ``[4,4,4,4]`` ..
   ``[13,13,13,13]``,
2. repeatedly pop the lowest-BOPs candidate, evaluate its accuracy,
3. when a candidate both lowers BOPs below the incumbent and meets the
   tolerance, adopt it and push its one-bit relaxations,
4. stop at the iteration limit or when the queue runs dry.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence

from repro.core.precision import PrecisionCombination
from repro.errors import SearchError

#: The paper's default iteration budget (Sec. V-B).
DEFAULT_MAX_ITERATIONS = 32

#: Uniform starting points: aggressive [4,4,4,4] .. conservative [13,13,13,13].
DEFAULT_START_BITS: tuple[int, ...] = tuple(range(4, 14))

AccuracyFn = Callable[[PrecisionCombination], float]
BopsFn = Callable[[PrecisionCombination], float]


@dataclass(frozen=True)
class SearchStep:
    """One evaluated candidate of the search trace (drives Fig. 9).

    Attributes:
        iteration: 1-based evaluation index.
        combination: the candidate 4-tuple.
        bops: its estimated cost.
        accuracy: measured calibration accuracy.
        meets_tolerance: whether accuracy passed the constraint.
        accepted: whether it became the new best combination.
        best_after: incumbent best after this step (``None`` early on).
    """

    iteration: int
    combination: PrecisionCombination
    bops: float
    accuracy: float
    meets_tolerance: bool
    accepted: bool
    best_after: PrecisionCombination | None


@dataclass
class SearchResult:
    """Full outcome of one adaptive precision search.

    Attributes:
        best: optimized combination, or ``None`` if nothing met the
            tolerance within the budget.
        best_bops: BOPs of ``best`` (``inf`` when infeasible).
        reference_accuracy: the accuracy the tolerance was anchored to.
        tolerance: the accuracy-loss tolerance used.
        steps: evaluation trace in order.
        exhausted: True if the queue emptied before the iteration limit.
    """

    best: PrecisionCombination | None
    best_bops: float
    reference_accuracy: float
    tolerance: float
    steps: list[SearchStep] = field(default_factory=list)
    exhausted: bool = False

    @property
    def iterations(self) -> int:
        """Number of candidate evaluations performed."""
        return len(self.steps)

    @property
    def feasible(self) -> bool:
        """Whether any combination met the accuracy constraint."""
        return self.best is not None


def adaptive_precision_search(
    evaluate_accuracy: AccuracyFn,
    evaluate_bops: BopsFn,
    reference_accuracy: float,
    tolerance: float,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    start_bits: Sequence[int] = DEFAULT_START_BITS,
) -> SearchResult:
    """Run Algorithm 1.

    Args:
        evaluate_accuracy: maps a combination to calibration accuracy
            (higher is better; for perplexity pass e.g.
            ``reference_ppl / ppl``).
        evaluate_bops: maps a combination to its BOPs estimate.
        reference_accuracy: accuracy of the unmodified (weight-only
            quantized) model on the calibration set.
        tolerance: relative accuracy-loss tolerance ``delta`` (0.01 means
            candidates must reach 99% of the reference accuracy).
        max_iterations: evaluation budget ``N``.
        start_bits: uniform seeds for the queue.

    Returns:
        A :class:`SearchResult` with the best combination and full trace.

    Raises:
        SearchError: on non-positive reference accuracy, negative
            tolerance, an empty seed list, or a non-positive budget.
    """
    if reference_accuracy <= 0:
        raise SearchError(f"reference accuracy must be > 0, got {reference_accuracy}")
    if tolerance < 0:
        raise SearchError(f"tolerance must be >= 0, got {tolerance}")
    if max_iterations < 1:
        raise SearchError(f"max_iterations must be >= 1, got {max_iterations}")
    if not start_bits:
        raise SearchError("start_bits must contain at least one seed precision")

    counter = itertools.count()
    queue: list[tuple[float, int, PrecisionCombination]] = []
    enqueued: set[PrecisionCombination] = set()

    def push(candidates: Iterable[PrecisionCombination]) -> None:
        for candidate in candidates:
            if candidate not in enqueued:
                enqueued.add(candidate)
                heapq.heappush(
                    queue, (float(evaluate_bops(candidate)), next(counter), candidate)
                )

    push(PrecisionCombination.uniform(bits) for bits in start_bits)

    threshold = (1.0 - tolerance) * reference_accuracy
    result = SearchResult(
        best=None,
        best_bops=float("inf"),
        reference_accuracy=reference_accuracy,
        tolerance=tolerance,
    )

    while len(result.steps) < max_iterations:
        if not queue:
            result.exhausted = True
            break
        bops, _, combination = heapq.heappop(queue)
        accuracy = float(evaluate_accuracy(combination))
        meets = accuracy >= threshold
        accepted = meets and bops < result.best_bops
        if accepted:
            result.best = combination
            result.best_bops = bops
            push(combination.relaxations())
        result.steps.append(
            SearchStep(
                iteration=len(result.steps) + 1,
                combination=combination,
                bops=bops,
                accuracy=accuracy,
                meets_tolerance=meets,
                accepted=accepted,
                best_after=result.best,
            )
        )
    return result
