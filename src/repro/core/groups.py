"""Grouping helpers shared by the BFP-family formats.

Block-floating-point formats share one exponent among a *group* of
values.  In Anda (and in this library generally) activations are grouped
along their last axis — the channel/reduction dimension of the FP-INT
GeMM — so a shared-exponent group is also a contiguous run of the dot
product, which is what lets the hardware use integer arithmetic within
a group (Sec. III-B of the paper).

These helpers reshape arbitrary tensors into a padded ``(n_groups,
group_size)`` view and back, remembering the original shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError


@dataclass(frozen=True)
class GroupLayout:
    """Bookkeeping needed to undo :func:`to_groups`.

    Attributes:
        shape: original tensor shape.
        group_size: elements per shared-exponent group.
        n_groups: number of groups after padding.
        pad: number of zero elements appended to fill the last group of
            each row.
        row_length: length of the original last axis.
    """

    shape: tuple[int, ...]
    group_size: int
    n_groups: int
    pad: int
    row_length: int

    @property
    def groups_per_row(self) -> int:
        """Number of groups covering one row (one slice of the last axis)."""
        return (self.row_length + self.pad) // self.group_size


def resolve_group_size(group_size: int | None, row_length: int) -> int:
    """Validate a group size, resolving ``None`` to the whole row.

    ``None`` reproduces the paper's ``GS=#Channels`` configuration in
    Fig. 5 (one shared exponent per channel row).
    """
    if group_size is None:
        group_size = row_length
    if group_size < 1:
        raise FormatError(f"group size must be >= 1, got {group_size}")
    return int(group_size)


def to_groups(values: np.ndarray, group_size: int | None) -> tuple[np.ndarray, GroupLayout]:
    """Reshape a tensor into ``(n_groups, group_size)`` rows of its last axis.

    Rows are padded with zeros up to a multiple of ``group_size``; zeros
    are neutral for BFP (they never contribute to the shared exponent and
    encode exactly).

    Returns:
        The grouped 2-D array and the :class:`GroupLayout` describing how
        to invert the operation.
    """
    arr = np.asarray(values)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    row_length = arr.shape[-1]
    if row_length == 0:
        raise FormatError("cannot group a tensor with an empty last axis")
    group_size = resolve_group_size(group_size, row_length)
    rows = arr.reshape(-1, row_length)
    pad = (-row_length) % group_size
    if pad:
        rows = np.pad(rows, ((0, 0), (0, pad)))
    grouped = rows.reshape(-1, group_size)
    layout = GroupLayout(
        shape=tuple(arr.shape),
        group_size=group_size,
        n_groups=grouped.shape[0],
        pad=pad,
        row_length=row_length,
    )
    return grouped, layout


def from_groups(grouped: np.ndarray, layout: GroupLayout) -> np.ndarray:
    """Invert :func:`to_groups`, dropping padding and restoring shape."""
    if grouped.shape != (layout.n_groups, layout.group_size):
        raise FormatError(
            f"grouped array has shape {grouped.shape}, expected "
            f"({layout.n_groups}, {layout.group_size})"
        )
    rows = grouped.reshape(-1, layout.row_length + layout.pad)
    if layout.pad:
        rows = rows[:, : layout.row_length]
    return rows.reshape(layout.shape)
