"""Banked SRAM and HBM2 DRAM models behind the bit-plane layout claims.

Sec. IV-A of the paper argues that the bit-plane layout is what makes
variable-length activations *storable*: "irregular memory accesses
caused by an ineffective data layout could completely undo the benefits
provided by Anda".  This module turns that sentence into two
quantitative, testable models:

* :class:`SramBanks` — a word-interleaved multi-bank SRAM.  Streaming a
  tensor through it yields a :class:`StreamStats` with word counts, bank
  conflicts and per-word rotation work, so the bit-plane layout and the
  element-atomic layout of prior precision-scalable designs can be
  compared on equal terms (:func:`compare_layouts`).
* :class:`Hbm2Channel` — a burst/row model of the paper's HBM2 part
  (256 GB/s, 3.9 pJ/bit) charging row activations and padding partial
  bursts, used to cost DRAM transfers of Anda versus FP16 tensors
  (:func:`transfer`).

Both models are deliberately structural — counts, not statistical
approximations — so property tests can pin exact invariants (zero
conflicts for unit-stride streams, plane-read blowup of the element
layout, burst-padding bounds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.core.bitplane import WORD_BITS
from repro.errors import HardwareError

#: Default bank count of the activation buffer model: one bank per BPC
#: lane so each lane owns an aligned stream.
DEFAULT_BANKS = 16

#: HBM2 burst length in bytes (BL4 x 64-bit pseudo-channel).
HBM2_BURST_BYTES = 32

#: HBM2 row (page) size per pseudo-channel in bytes.
HBM2_ROW_BYTES = 1024

#: Energy of one row activation (pJ) — folded DRAM core cost per page
#: open, on top of the paper's 3.9 pJ/bit I/O + array energy.
HBM2_ROW_ENERGY_PJ = 909.0

#: I/O + array energy per transferred bit (paper value, Jouppi et al.).
HBM2_PJ_PER_BIT = 3.9


@dataclass(frozen=True)
class StreamStats:
    """Cost of streaming one tensor through the SRAM model.

    Attributes:
        words_fetched: 64-bit words read from the banks.
        useful_bits: payload bits the consumer actually needed.
        bank_conflicts: same-cycle same-bank collisions (each one is a
            stall cycle for the losing requester).
        rotations: per-word bit-rotation/merge operations the consumer
            must perform to realign fields (zero for aligned layouts).
    """

    words_fetched: int
    useful_bits: int
    bank_conflicts: int
    rotations: int

    @property
    def fetched_bits(self) -> int:
        return self.words_fetched * WORD_BITS

    @property
    def bandwidth_utilization(self) -> float:
        """Useful payload bits per fetched bit (1.0 = no waste)."""
        if self.words_fetched == 0:
            return 1.0
        return self.useful_bits / self.fetched_bits

    @property
    def access_cycles(self) -> int:
        """Cycles to issue the stream on one port: fetches + stalls."""
        return self.words_fetched + self.bank_conflicts


class SramBanks:
    """A word-interleaved banked SRAM with single-ported banks.

    Word address ``a`` lives in bank ``a % n_banks``.  A *cycle* is a
    batch of simultaneously issued word addresses; every address beyond
    the first that maps to an already-busy bank costs one conflict.
    """

    def __init__(self, n_banks: int = DEFAULT_BANKS, word_bits: int = WORD_BITS) -> None:
        if n_banks < 1:
            raise HardwareError(f"need at least one bank, got {n_banks}")
        if word_bits < 1:
            raise HardwareError(f"word width must be >= 1, got {word_bits}")
        self.n_banks = n_banks
        self.word_bits = word_bits

    def bank_of(self, address: int) -> int:
        if address < 0:
            raise HardwareError(f"addresses must be >= 0, got {address}")
        return address % self.n_banks

    def conflicts(self, cycles: Iterable[Sequence[int]]) -> int:
        """Count bank conflicts over a sequence of issue cycles."""
        total = 0
        for addresses in cycles:
            seen: dict[int, int] = {}
            for address in addresses:
                bank = self.bank_of(address)
                seen[bank] = seen.get(bank, 0) + 1
            total += sum(count - 1 for count in seen.values())
        return total


# -- layout access models ------------------------------------------------------


def bitplane_stream(n_groups: int, mantissa_bits: int, banks: SramBanks | None = None) -> StreamStats:
    """Cost of streaming an Anda tensor stored bit-plane-wise (Fig. 10).

    Each group is ``1 + M`` consecutive words (sign, then planes); the
    bit-serial PE consumes exactly one word per cycle, so the stream is
    unit-stride: every fetched bit is payload, consecutive addresses hit
    distinct banks, and no realignment is ever needed.
    """
    _check_stream_args(n_groups, mantissa_bits)
    banks = banks or SramBanks()
    words_per_group = 1 + mantissa_bits
    total_words = n_groups * words_per_group
    # Unit stride: one address per cycle, so conflicts are structurally
    # impossible; encoded via the conflict counter for uniformity.
    conflicts = banks.conflicts([addr] for addr in range(total_words))
    return StreamStats(
        words_fetched=total_words,
        useful_bits=total_words * WORD_BITS,
        bank_conflicts=conflicts,
        rotations=0,
    )


def element_stream(n_groups: int, mantissa_bits: int, banks: SramBanks | None = None) -> StreamStats:
    """Cost of feeding the *bit-serial* PE from an element-atomic layout.

    Prior precision-scalable designs pack each ``1 + M``-bit value as an
    atomic field ([30], [41], [61], [67] in the paper).  A bit-serial PE
    consumes one significance level of all 64 elements per cycle; in the
    element layout, bit ``p`` of the group's 64 elements is scattered
    across all ``ceil(64 * (1 + M) / 64) = 1 + M`` words, at a different
    bit position in each.  Serving one plane therefore re-reads the whole
    group footprint and extracts one bit per element — the layout, not
    the format, destroys the bandwidth advantage:

    * words fetched: ``(1 + M)`` per plane, ``(1 + M)`` planes (sign
      plane included) → ``(1 + M)**2`` per group,
    * useful bits per fetched word: 64 / (1 + M) on average,
    * every element whose field straddles a word boundary costs one
      rotation (shift-and-merge) in the consumer.
    """
    _check_stream_args(n_groups, mantissa_bits)
    banks = banks or SramBanks()
    bits_per_element = 1 + mantissa_bits
    words_per_group = math.ceil(WORD_BITS * bits_per_element / WORD_BITS)
    planes = bits_per_element  # sign plane + M mantissa planes
    words = n_groups * words_per_group * planes
    useful = n_groups * planes * WORD_BITS  # one bit per element per plane

    straddles = _straddles_per_group(bits_per_element)
    rotations = n_groups * straddles

    # One plane read issues `words_per_group` parallel requests; their
    # addresses are consecutive, so conflicts appear once the group
    # footprint exceeds the bank count.
    base_addresses = range(words_per_group)
    conflict_cycles = ([a for a in base_addresses] for _ in range(n_groups * planes))
    conflicts = banks.conflicts(conflict_cycles)
    return StreamStats(
        words_fetched=words,
        useful_bits=useful,
        bank_conflicts=conflicts,
        rotations=rotations,
    )


def _straddles_per_group(bits_per_element: int) -> int:
    """Elements per 64-element group whose packed field crosses a word."""
    straddles = 0
    for index in range(WORD_BITS):
        offset = (index * bits_per_element) % WORD_BITS
        if offset + bits_per_element > WORD_BITS:
            straddles += 1
    return straddles


def _check_stream_args(n_groups: int, mantissa_bits: int) -> None:
    if n_groups < 1:
        raise HardwareError(f"need at least one group, got {n_groups}")
    if not 1 <= mantissa_bits <= 16:
        raise HardwareError(f"mantissa bits must be in [1, 16], got {mantissa_bits}")


@dataclass(frozen=True)
class LayoutComparison:
    """Bit-plane versus element-atomic layout for one tensor shape."""

    mantissa_bits: int
    bitplane: StreamStats
    element: StreamStats

    @property
    def fetch_ratio(self) -> float:
        """Element-layout words fetched per bit-plane word fetched."""
        return self.element.words_fetched / self.bitplane.words_fetched

    @property
    def stall_overhead(self) -> float:
        """Extra access cycles of the element layout, relative."""
        return self.element.access_cycles / self.bitplane.access_cycles


def compare_layouts(
    n_groups: int, mantissa_bits: int, banks: SramBanks | None = None
) -> LayoutComparison:
    """Quantify the Sec. IV-A regularity claim for one tensor shape."""
    return LayoutComparison(
        mantissa_bits=mantissa_bits,
        bitplane=bitplane_stream(n_groups, mantissa_bits, banks),
        element=element_stream(n_groups, mantissa_bits, banks),
    )


# -- HBM2 channel model ----------------------------------------------------------


@dataclass(frozen=True)
class DramTransfer:
    """Cost of one DRAM transfer.

    Attributes:
        payload_bytes: bytes the requester asked for.
        bursts: minimum-granularity bursts moved on the bus.
        row_activations: DRAM pages opened.
        energy_pj: I/O + array + row-activation energy.
    """

    payload_bytes: int
    bursts: int
    row_activations: int
    energy_pj: float

    @property
    def bus_bytes(self) -> int:
        return self.bursts * HBM2_BURST_BYTES

    @property
    def burst_utilization(self) -> float:
        """Payload bytes per bus byte (1.0 = perfectly packed)."""
        if self.bursts == 0:
            return 1.0
        return self.payload_bytes / self.bus_bytes


class Hbm2Channel:
    """Burst/row cost model of the paper's HBM2 memory system.

    The tile simulator charges the paper's flat 3.9 pJ/bit; this model
    refines it with burst granularity and row activations so layout
    effects on *DRAM* behaviour are visible too (contiguous Anda tensors
    transfer in full bursts; scattering a tensor across rows pays row
    energy).
    """

    def __init__(
        self,
        burst_bytes: int = HBM2_BURST_BYTES,
        row_bytes: int = HBM2_ROW_BYTES,
        pj_per_bit: float = HBM2_PJ_PER_BIT,
        row_energy_pj: float = HBM2_ROW_ENERGY_PJ,
    ) -> None:
        if burst_bytes < 1 or row_bytes < burst_bytes:
            raise HardwareError(
                f"need row_bytes >= burst_bytes >= 1, got "
                f"burst={burst_bytes}, row={row_bytes}"
            )
        self.burst_bytes = burst_bytes
        self.row_bytes = row_bytes
        self.pj_per_bit = pj_per_bit
        self.row_energy_pj = row_energy_pj

    def transfer(self, payload_bytes: int, segments: int = 1) -> DramTransfer:
        """Cost of moving ``payload_bytes`` split over ``segments``
        separately-addressed contiguous extents.

        One segment models a well-packed tensor; many segments model a
        scattered allocation (each segment rounds up to burst granularity
        and opens at least one row).
        """
        if payload_bytes < 0:
            raise HardwareError(f"payload must be >= 0, got {payload_bytes}")
        if segments < 1:
            raise HardwareError(f"segments must be >= 1, got {segments}")
        if payload_bytes == 0:
            return DramTransfer(0, 0, 0, 0.0)
        per_segment = math.ceil(payload_bytes / segments)
        bursts_per_segment = math.ceil(per_segment / self.burst_bytes)
        bursts = bursts_per_segment * segments
        rows_per_segment = math.ceil(
            bursts_per_segment * self.burst_bytes / self.row_bytes
        )
        rows = rows_per_segment * segments
        energy = (
            bursts * self.burst_bytes * 8 * self.pj_per_bit
            + rows * self.row_energy_pj
        )
        return DramTransfer(
            payload_bytes=payload_bytes,
            bursts=bursts,
            row_activations=rows,
            energy_pj=energy,
        )

    def tensor_bytes(self, n_groups: int, mantissa_bits: int) -> int:
        """DRAM footprint of an Anda tensor (planes + signs + exponents)."""
        _check_stream_args(n_groups, mantissa_bits)
        payload_bits = n_groups * ((1 + mantissa_bits) * WORD_BITS + 8)
        return math.ceil(payload_bits / 8)
