"""End-to-end transformer inference scheduling on the Anda system.

The paper's system-level evaluation (Fig. 16-18) isolates the FP-INT
GeMMs.  This module extends the simulator to the *whole* transformer
block — attention score/context matmuls (kept FP-FP, Sec. V-A), the
vector unit's normalization/softmax/activation work (Fig. 13 ❹), and
the KV-cache traffic — so the Amdahl-level consequences of Anda are
visible:

* prefill latency and decode tokens/s per model and architecture,
* energy per generated token with a compute/SRAM/DRAM split,
* the end-to-end speedup, which is necessarily smaller than the
  GeMM-only speedup of Fig. 16 (the FP-FP attention share grows with
  context length — the same effect that caps Fig. 2's GeMM share).

Timing conventions follow :mod:`repro.hw.simulator` (285 MHz, double-
buffered DRAM overlap); attention matmuls run on the MXU with FP-FP
cost, vector work runs on the 64-lane vector unit concurrently with
nothing (it is serialized between GeMMs, a conservative choice the
paper also makes by not counting it at all).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import PrecisionCombination, TensorKind
from repro.errors import HardwareError
from repro.hw.params import (
    CLOCK_HZ,
    VECTOR_UNIT_WIDTH,
    DEFAULT_BUDGET,
    SystemBudget,
)
from repro.hw.pe import get_pe
from repro.hw.simulator import simulate_gemm
from repro.hw.workloads import Gemm, prefill_gemms
from repro.llm.config import ModelConfig, get_config

#: Vector-unit passes per element for each non-linear stage.  A pass is
#: one read-modify-write of the 64-lane unit; softmax needs max, exp,
#: sum and scale sweeps, normalization needs moment + scale sweeps.
VECTOR_PASSES = {
    "norm": 3.0,
    "softmax": 4.0,
    "activation": 1.0,
    "rope": 2.0,
    "residual": 1.0,
}

#: CALIBRATED - vector-unit energy per lane-operation (pJ); an FP16 ALU
#: op costs roughly a third of the FP-FP MAC anchor.
E_VECTOR_OP_PJ = 0.06


@dataclass(frozen=True)
class StageCost:
    """Cost of one pipeline stage of a transformer block.

    Attributes:
        name: stage label (``"gemm:qkv"``, ``"attn:scores"``, ...).
        unit: ``"mxu"`` or ``"vector"``.
        cycles: wall-clock cycles (memory overlap already applied).
        energy_pj: total energy of the stage.
        dram_bytes: DRAM traffic attributed to the stage.
    """

    name: str
    unit: str
    cycles: float
    energy_pj: float
    dram_bytes: float = 0.0


@dataclass
class BlockSchedule:
    """All stages of one transformer block at one operating point."""

    model_name: str
    architecture: str
    sequence_length: int
    stages: list[StageCost]

    @property
    def cycles(self) -> float:
        return sum(stage.cycles for stage in self.stages)

    @property
    def energy_pj(self) -> float:
        return sum(stage.energy_pj for stage in self.stages)

    @property
    def latency_s(self) -> float:
        return self.cycles / CLOCK_HZ

    def share(self, prefix: str) -> float:
        """Cycle share of stages whose name starts with ``prefix``."""
        total = self.cycles
        if total == 0:
            return 0.0
        part = sum(
            stage.cycles for stage in self.stages if stage.name.startswith(prefix)
        )
        return part / total

    def stage(self, name: str) -> StageCost:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise HardwareError(
            f"no stage {name!r}; have {[stage.name for stage in self.stages]}"
        )


def _vector_stage(name: str, kind: str, elements: float) -> StageCost:
    """Cost one vector-unit sweep family over ``elements`` values."""
    passes = VECTOR_PASSES[kind]
    lane_ops = elements * passes
    cycles = lane_ops / VECTOR_UNIT_WIDTH
    return StageCost(
        name=name,
        unit="vector",
        cycles=cycles,
        energy_pj=lane_ops * E_VECTOR_OP_PJ,
    )


def _attention_stages(
    config: ModelConfig,
    query_rows: int,
    kv_length: int,
    budget: SystemBudget,
    kv_bits: float = 16.0,
) -> list[StageCost]:
    """FP-FP attention matmuls + softmax for one block.

    Scores (``Q K^T``) and context (``P V``) run per head on the MXU at
    FP-FP cost.  ``kv_bits`` is the stored width of the cached keys and
    values — 16 for the paper's FP16 KV cache (Sec. V-A), or an Anda
    width when the Sec. VI compression synergy is enabled.
    """
    fpfp = get_pe("FP-FP")
    stages: list[StageCost] = []
    for name, reduction, cols in (
        ("attn:scores", config.head_dim, kv_length),
        ("attn:context", kv_length, config.head_dim),
    ):
        gemm = Gemm(TensorKind.O, query_rows, reduction, cols, repeats=config.n_heads)
        metrics = simulate_gemm(gemm, fpfp, None, budget, weight_bits=kv_bits)
        stages.append(
            StageCost(
                name=name,
                unit="mxu",
                cycles=metrics.cycles,
                energy_pj=metrics.energy_pj,
                dram_bytes=metrics.dram_bytes,
            )
        )
    scores = query_rows * kv_length * config.n_heads
    stages.append(_vector_stage("attn:softmax", "softmax", scores))
    if config.family == "llama":
        stages.append(
            _vector_stage("attn:rope", "rope", 2 * query_rows * config.d_model)
        )
    return stages


def schedule_block(
    model_name: str,
    architecture: str,
    combination: PrecisionCombination | None = None,
    sequence_length: int = 2048,
    kv_length: int | None = None,
    budget: SystemBudget = DEFAULT_BUDGET,
    kv_bits: float = 16.0,
) -> BlockSchedule:
    """Schedule one transformer block end to end.

    Args:
        model_name: paper-scale config name (e.g. ``"llama-13b"``).
        architecture: PE model for the FP-INT GeMMs.
        combination: Anda mantissa lengths (required for Anda).
        sequence_length: query tokens processed this pass (prefill
            length, or 1 for decode).
        kv_length: attended context length (defaults to
            ``sequence_length`` — prefill; set > 1 with
            ``sequence_length=1`` for decode).
        kv_bits: stored width of the cached keys/values (16 = the
            paper's FP16 KV cache; pass an Anda width for the Sec. VI
            compression synergy).
    """
    if sequence_length < 1:
        raise HardwareError(f"sequence length must be >= 1, got {sequence_length}")
    if kv_bits <= 0:
        raise HardwareError(f"kv_bits must be positive, got {kv_bits}")
    config = get_config(model_name)
    kv = kv_length if kv_length is not None else sequence_length
    if kv < sequence_length:
        raise HardwareError(f"kv_length {kv} shorter than query run {sequence_length}")
    pe = get_pe(architecture) if isinstance(architecture, str) else architecture

    per_block = [
        Gemm(gemm.kind, gemm.rows, gemm.reduction, gemm.cols, repeats=1)
        for gemm in prefill_gemms(config, sequence_length)
    ]
    stages: list[StageCost] = []
    stages.append(
        _vector_stage("norm:attn", "norm", sequence_length * config.d_model)
    )
    for gemm in per_block:
        if gemm.kind is TensorKind.QKV:
            metrics = simulate_gemm(gemm, pe, combination, budget)
            stages.append(
                StageCost(
                    "gemm:qkv", "mxu", metrics.cycles, metrics.energy_pj,
                    metrics.dram_bytes,
                )
            )
            stages.extend(
                _attention_stages(config, sequence_length, kv, budget, kv_bits)
            )
        else:
            label = f"gemm:{gemm.kind.value}"
            metrics = simulate_gemm(gemm, pe, combination, budget)
            stages.append(
                StageCost(
                    label, "mxu", metrics.cycles, metrics.energy_pj,
                    metrics.dram_bytes,
                )
            )
            if gemm.kind is TensorKind.U:
                stages.append(
                    _vector_stage(
                        "ffn:activation", "activation",
                        sequence_length * config.ffn_dim,
                    )
                )
    stages.append(
        _vector_stage("norm:ffn", "norm", sequence_length * config.d_model)
    )
    stages.append(
        _vector_stage("residual", "residual", 2 * sequence_length * config.d_model)
    )
    return BlockSchedule(
        model_name=model_name,
        architecture=pe.name,
        sequence_length=sequence_length,
        stages=stages,
    )


@dataclass(frozen=True)
class InferenceEstimate:
    """End-to-end serving estimate for one model on one architecture.

    Attributes:
        model_name / architecture: operating point identity.
        prefill_latency_s: time to process the prompt.
        decode_latency_s: time per generated token at full context.
        prefill_energy_j: energy of the prompt pass.
        decode_energy_j: energy per generated token.
    """

    model_name: str
    architecture: str
    prefill_tokens: int
    prefill_latency_s: float
    decode_latency_s: float
    prefill_energy_j: float
    decode_energy_j: float

    @property
    def decode_tokens_per_s(self) -> float:
        return 1.0 / self.decode_latency_s

    @property
    def time_to_first_token_s(self) -> float:
        return self.prefill_latency_s


def estimate_inference(
    model_name: str,
    architecture: str,
    combination: PrecisionCombination | None = None,
    prefill_tokens: int = 2048,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> InferenceEstimate:
    """Prefill + decode estimate over all layers of one model."""
    config = get_config(model_name)
    prefill = schedule_block(
        model_name, architecture, combination, prefill_tokens, budget=budget
    )
    decode = schedule_block(
        model_name,
        architecture,
        combination,
        sequence_length=1,
        kv_length=prefill_tokens,
        budget=budget,
    )
    layers = config.n_layers
    joule = 1e-12
    return InferenceEstimate(
        model_name=model_name,
        architecture=prefill.architecture,
        prefill_tokens=prefill_tokens,
        prefill_latency_s=layers * prefill.latency_s,
        decode_latency_s=layers * decode.latency_s,
        prefill_energy_j=layers * prefill.energy_pj * joule,
        decode_energy_j=layers * decode.energy_pj * joule,
    )


@dataclass(frozen=True)
class EndToEndComparison:
    """Anda versus a baseline on the full block (Amdahl view)."""

    model_name: str
    baseline: str
    gemm_speedup: float
    end_to_end_speedup: float
    end_to_end_energy_ratio: float

    @property
    def amdahl_gap(self) -> float:
        """How much of the GeMM-only speedup the full block keeps."""
        return self.end_to_end_speedup / self.gemm_speedup


def compare_end_to_end(
    model_name: str,
    combination: PrecisionCombination,
    baseline: str = "FP-FP",
    sequence_length: int = 2048,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> EndToEndComparison:
    """Quantify the Amdahl effect of the non-GeMM stages (extension)."""
    base = schedule_block(
        model_name, baseline, None, sequence_length, budget=budget
    )
    anda = schedule_block(
        model_name, "Anda", combination, sequence_length, budget=budget
    )

    def gemm_cycles(schedule: BlockSchedule) -> float:
        return sum(
            stage.cycles
            for stage in schedule.stages
            if stage.name.startswith("gemm:")
        )

    return EndToEndComparison(
        model_name=model_name,
        baseline=baseline,
        gemm_speedup=gemm_cycles(base) / gemm_cycles(anda),
        end_to_end_speedup=base.cycles / anda.cycles,
        end_to_end_energy_ratio=base.energy_pj / anda.energy_pj,
    )


def kv_cache_bytes(config: ModelConfig, context_length: int, bits: float = 16.0) -> float:
    """KV-cache footprint at a context length (2 tensors x layers x d)."""
    if context_length < 0:
        raise HardwareError(f"context length must be >= 0, got {context_length}")
    return 2 * config.n_layers * config.d_model * context_length * bits / 8


@dataclass(frozen=True)
class KvDecodeComparison:
    """Decode-step cost with FP16 versus Anda-compressed KV cache.

    The Sec. VI synergy, quantified at the pipeline level: compressing
    cached keys/values shrinks the attention matmuls' streamed operand,
    which is what dominates a long-context decode step.
    """

    model_name: str
    context_length: int
    kv_mantissa: int
    fp16_cycles: float
    compressed_cycles: float
    fp16_energy_pj: float
    compressed_energy_pj: float
    cache_bytes_fp16: float
    cache_bytes_compressed: float

    @property
    def decode_speedup(self) -> float:
        return self.fp16_cycles / self.compressed_cycles

    @property
    def decode_energy_ratio(self) -> float:
        return self.fp16_energy_pj / self.compressed_energy_pj

    @property
    def cache_compression(self) -> float:
        return self.cache_bytes_fp16 / self.cache_bytes_compressed


def compare_kv_compression(
    model_name: str,
    combination: PrecisionCombination,
    context_length: int = 2048,
    kv_mantissa: int = 8,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> KvDecodeComparison:
    """Cost one decode step with FP16 vs Anda-format KV cache.

    ``kv_mantissa`` selects the Anda width of the cached tensors; the
    accuracy cost of that choice is measured separately by
    :mod:`repro.llm.kv_quant` (the two sides of the same trade-off).
    """
    if not 1 <= kv_mantissa <= 16:
        raise HardwareError(
            f"kv_mantissa must be in [1, 16], got {kv_mantissa}"
        )
    config = get_config(model_name)
    anda_bits = 1.0 + kv_mantissa + 8.0 / 64
    fp16 = schedule_block(
        model_name, "Anda", combination, 1, kv_length=context_length,
        budget=budget, kv_bits=16.0,
    )
    compressed = schedule_block(
        model_name, "Anda", combination, 1, kv_length=context_length,
        budget=budget, kv_bits=anda_bits,
    )
    layers = config.n_layers
    return KvDecodeComparison(
        model_name=model_name,
        context_length=context_length,
        kv_mantissa=kv_mantissa,
        fp16_cycles=layers * fp16.cycles,
        compressed_cycles=layers * compressed.cycles,
        fp16_energy_pj=layers * fp16.energy_pj,
        compressed_energy_pj=layers * compressed.energy_pj,
        cache_bytes_fp16=kv_cache_bytes(config, context_length, 16.0),
        cache_bytes_compressed=kv_cache_bytes(config, context_length, anda_bits),
    )
