"""System-level comparisons between Anda and the baseline accelerators.

Composes the tile simulator, the PE models and the area model into the
paper's system metrics (Fig. 16-18):

* **speedup** — FP-FP wall-clock cycles / architecture cycles,
* **energy efficiency** — FP-FP total energy / architecture energy,
* **area efficiency** — speedup scaled by the system-area ratio
  (throughput per mm² relative to FP-FP).

The Anda rows consume a per-model precision combination — in the full
pipeline, the one found by the adaptive search on WikiText2 (Fig. 14);
helpers accept any combination so ablations can sweep precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.precision import PrecisionCombination
from repro.hw.area import system_area_mm2
from repro.hw.pe import PE_ORDER
from repro.hw.simulator import SystemRun, simulate_model


@dataclass(frozen=True)
class SystemComparison:
    """One architecture's system metrics for one model, vs FP-FP."""

    architecture: str
    model_name: str
    speedup: float
    energy_efficiency: float
    area_efficiency: float
    run: SystemRun

    def energy_shares_vs_fpfp(self, fpfp: SystemRun) -> dict[str, float]:
        """Compute/SRAM/DRAM energies as fractions of the FP-FP total
        (the normalization of Fig. 17's stacked bars)."""
        total = fpfp.energy_pj
        return {
            "compute": self.run.compute_energy_pj / total,
            "sram": self.run.sram_energy_pj / total,
            "dram": self.run.dram_energy_pj / total,
        }


def compare_architectures(
    model_name: str,
    anda_combination: PrecisionCombination,
    architectures: tuple[str, ...] = PE_ORDER,
    sequence_length: int | None = None,
) -> dict[str, SystemComparison]:
    """Fig. 16 row: every architecture against FP-FP on one model."""
    fpfp = simulate_model(model_name, "FP-FP", sequence_length=sequence_length)
    fpfp_area = system_area_mm2("FP-FP")
    results: dict[str, SystemComparison] = {}
    for arch in architectures:
        combination = anda_combination if arch == "Anda" else None
        run = simulate_model(
            model_name, arch, combination, sequence_length=sequence_length
        )
        speedup = fpfp.cycles / run.cycles
        energy_eff = fpfp.energy_pj / run.energy_pj
        area_eff = speedup * fpfp_area / system_area_mm2(arch)
        results[arch] = SystemComparison(
            architecture=arch,
            model_name=model_name,
            speedup=speedup,
            energy_efficiency=energy_eff,
            area_efficiency=area_eff,
            run=run,
        )
    return results


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the paper's cross-model aggregate)."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class AndaOperatingPoint:
    """Anda system metrics at one accuracy tolerance (Fig. 18 point)."""

    model_name: str
    tolerance: float
    combination: PrecisionCombination
    speedup: float
    energy_efficiency: float


def anda_operating_point(
    model_name: str,
    combination: PrecisionCombination,
    tolerance: float,
    sequence_length: int | None = None,
) -> AndaOperatingPoint:
    """Speedup/energy-efficiency of Anda vs FP-FP for one combination."""
    fpfp = simulate_model(model_name, "FP-FP", sequence_length=sequence_length)
    anda = simulate_model(
        model_name, "Anda", combination, sequence_length=sequence_length
    )
    return AndaOperatingPoint(
        model_name=model_name,
        tolerance=tolerance,
        combination=combination,
        speedup=fpfp.cycles / anda.cycles,
        energy_efficiency=fpfp.energy_pj / anda.energy_pj,
    )
