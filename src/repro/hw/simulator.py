"""Tile-level cycle and energy simulator for FP-INT GeMM accelerators.

Models one accelerator (Anda or a baseline) executing the FP-INT GeMMs
of an LLM forward pass on the common system budget of Sec. V-A: a 16x16
PE array at 285 MHz, 1.125 MB activation + 1 MB weight buffers, HBM2 at
256 GB/s and 3.9 pJ/bit.

Timing
------
The MXU runs output-stationary: each tile pins a 16x16 patch of outputs
while the reduction dimension streams through in 64-element shared-
exponent groups.  A group costs ``cycles_per_group`` of the PE model
(16 at the common datapath width; ``M+1`` for the bit-serial Anda APU —
this is where variable-length mantissas buy latency).  DRAM transfers
overlap compute via double buffering, so a GeMM costs
``max(compute_cycles, dram_cycles)``.

Data movement
-------------
DRAM traffic follows the better of two residency strategies per GeMM
(weights resident / activations resident), with the non-resident tensor
re-streamed once per buffer-sized chunk.  SRAM traffic counts the
array's actual access pattern: activations re-read per 16-column tile
strip, weights re-read per 16-row strip, plus fills and output
write-backs.  Activation volumes use each architecture's storage format
(FP16, or bit-plane Anda at ``1 + M + 8/64`` bits per element), which is
where variable-length mantissas buy memory energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.precision import PrecisionCombination
from repro.errors import HardwareError
from repro.hw.params import (
    DRAM_PJ_PER_BIT,
    GROUP_SIZE,
    SRAM_PJ_PER_BIT,
    SystemBudget,
    DEFAULT_BUDGET,
)
from repro.hw.pe import PEModel, get_pe
from repro.hw.workloads import Gemm, max_context_length, prefill_gemms
from repro.llm.config import get_config

#: CALIBRATED - FP-FP MAC energy (pJ).  Anchored so the FP-FP system's
#: compute share of total energy on the LLaMA-13B workload matches the
#: paper's Fig. 17 breakdown; all other architectures scale by their
#: published PE power ratios.
E_MAC_FPFP_PJ = 0.18


@dataclass(frozen=True)
class GemmMetrics:
    """Cost of one GeMM (all repeats included) on one architecture."""

    compute_cycles: float
    dram_bytes: float
    sram_bits: float
    compute_energy_pj: float
    sram_energy_pj: float
    dram_energy_pj: float
    memory_cycles: float

    @property
    def cycles(self) -> float:
        """Wall-clock cycles with compute/DRAM double-buffer overlap."""
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def energy_pj(self) -> float:
        return self.compute_energy_pj + self.sram_energy_pj + self.dram_energy_pj


@dataclass(frozen=True)
class SystemRun:
    """Aggregate of one model forward pass on one architecture."""

    architecture: str
    model_name: str
    cycles: float
    compute_energy_pj: float
    sram_energy_pj: float
    dram_energy_pj: float
    dram_bytes: float

    @property
    def energy_pj(self) -> float:
        return self.compute_energy_pj + self.sram_energy_pj + self.dram_energy_pj

    def energy_shares(self) -> dict[str, float]:
        """Fractional compute/SRAM/DRAM split (the Fig. 17 bars)."""
        total = self.energy_pj
        return {
            "compute": self.compute_energy_pj / total,
            "sram": self.sram_energy_pj / total,
            "dram": self.dram_energy_pj / total,
        }


def _mantissa_for(
    pe: PEModel, gemm: Gemm, combination: PrecisionCombination | None
) -> int | None:
    if not pe.runtime_variable:
        return None
    if combination is None:
        raise HardwareError(f"{pe.name} needs a precision combination")
    return combination[gemm.kind]


def simulate_gemm(
    gemm: Gemm,
    pe: PEModel,
    combination: PrecisionCombination | None = None,
    budget: SystemBudget = DEFAULT_BUDGET,
    weight_bits: float = 4.0,
) -> GemmMetrics:
    """Cycle/energy cost of one GeMM on one architecture.

    ``weight_bits`` is the stored width of the stationary operand —
    INT4 for the paper's FP-INT GeMMs (default); the pipeline model
    passes 16 (FP16 K/V) or an Anda width for attention matmuls.
    """
    mantissa = _mantissa_for(pe, gemm, combination)
    act_bits = pe.act_bits_per_element(mantissa)

    row_tiles = math.ceil(gemm.rows / budget.mxu_rows)
    col_tiles = math.ceil(gemm.cols / budget.mxu_cols)
    groups = math.ceil(gemm.reduction / GROUP_SIZE)
    cycles_per_group = pe.cycles_per_group(mantissa)
    compute_cycles = row_tiles * col_tiles * groups * cycles_per_group * gemm.repeats

    # One instance's tensor footprints.
    weight_bytes = gemm.reduction * gemm.cols * weight_bits / 8
    act_in_bytes = gemm.rows * gemm.reduction * act_bits / 8
    act_out_bytes = gemm.rows * gemm.cols * act_bits / 8

    # DRAM: better of weights-resident vs activations-resident chunking.
    weights_resident = (
        weight_bytes
        + math.ceil(weight_bytes / budget.wgt_buffer_bytes) * act_in_bytes
        + act_out_bytes
    )
    acts_resident = (
        act_in_bytes
        + math.ceil(act_in_bytes / budget.act_buffer_bytes) * weight_bytes
        + act_out_bytes
    )
    dram_bytes = min(weights_resident, acts_resident) * gemm.repeats
    memory_cycles = dram_bytes / budget.dram_bytes_per_cycle

    # SRAM: strip-level re-reads plus fills and output write-back.
    act_reads = gemm.rows * gemm.reduction * act_bits * col_tiles
    wgt_reads = gemm.reduction * gemm.cols * weight_bits * row_tiles
    fills = dram_bytes / gemm.repeats * 8
    out_writes = gemm.rows * gemm.cols * act_bits
    sram_bits = (act_reads + wgt_reads + fills + out_writes) * gemm.repeats

    group_energy_pj = (
        GROUP_SIZE * E_MAC_FPFP_PJ * pe.group_energy_rel(mantissa)
    )
    pe_count = budget.pe_count
    compute_energy = (
        row_tiles * col_tiles * pe_count * groups * group_energy_pj * gemm.repeats
    )

    return GemmMetrics(
        compute_cycles=compute_cycles,
        dram_bytes=dram_bytes,
        sram_bits=sram_bits,
        compute_energy_pj=compute_energy,
        sram_energy_pj=sram_bits * SRAM_PJ_PER_BIT,
        dram_energy_pj=dram_bytes * 8 * DRAM_PJ_PER_BIT,
        memory_cycles=memory_cycles,
    )


def simulate_model(
    model_name: str,
    architecture: str | PEModel,
    combination: PrecisionCombination | None = None,
    sequence_length: int | None = None,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> SystemRun:
    """Run all FP-INT GeMMs of one model's prefill on one architecture.

    Args:
        model_name: paper-scale model (e.g. ``"llama-13b"``).
        architecture: PE model name (``"FP-FP"`` .. ``"Anda"``) or a
            custom :class:`~repro.hw.pe.PEModel` (ablations).
        combination: Anda mantissa lengths (required for Anda).
        sequence_length: prefill length (defaults to the paper's
            maximum acceptable context).
    """
    config = get_config(model_name)
    pe = architecture if isinstance(architecture, PEModel) else get_pe(architecture)
    seq = sequence_length or max_context_length(config)
    cycles = 0.0
    compute = sram = dram_e = dram_b = 0.0
    for gemm in prefill_gemms(config, seq):
        metrics = simulate_gemm(gemm, pe, combination, budget)
        cycles += metrics.cycles
        compute += metrics.compute_energy_pj
        sram += metrics.sram_energy_pj
        dram_e += metrics.dram_energy_pj
        dram_b += metrics.dram_bytes
    return SystemRun(
        architecture=pe.name,
        model_name=model_name,
        cycles=cycles,
        compute_energy_pj=compute,
        sram_energy_pj=sram,
        dram_energy_pj=dram_e,
        dram_bytes=dram_b,
    )
