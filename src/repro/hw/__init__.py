"""Hardware models: the Anda accelerator and its baselines.

* :mod:`repro.hw.params` — technology/system constants (paper values +
  calibrated unit costs).
* :mod:`repro.hw.gates` — gate-level cost primitives.
* :mod:`repro.hw.pe` — processing-element models (FP-FP .. Anda APU).
* :mod:`repro.hw.workloads` — GeMM shape extraction, Fig. 2 op counts.
* :mod:`repro.hw.simulator` — tile-level cycle/energy simulation.
* :mod:`repro.hw.area` — Table III system area/power composition.
* :mod:`repro.hw.accelerator` — system-level Fig. 16-18 comparisons.
* :mod:`repro.hw.event_sim` — event-driven controller-program executor.
* :mod:`repro.hw.memory` — banked SRAM and HBM2 burst/row models.
* :mod:`repro.hw.pipeline` — end-to-end transformer block scheduling.
* :mod:`repro.hw.mapping` — OS/WS/IS dataflow ablation.
* :mod:`repro.hw.workflows` — Fig. 8 workflow cost accounting.
"""

from repro.hw.accelerator import (
    AndaOperatingPoint,
    SystemComparison,
    anda_operating_point,
    compare_architectures,
    geometric_mean,
)
from repro.hw.addressing import BitPlaneAddressGenerator, buffer_words_for
from repro.hw.area import anda_system_breakdown, system_area_mm2
from repro.hw.event_sim import ExecutionReport, execute, summarize_overlap
from repro.hw.mapping import compare_dataflows, dataflow_cost
from repro.hw.memory import Hbm2Channel, SramBanks, compare_layouts
from repro.hw.pipeline import (
    BlockSchedule,
    InferenceEstimate,
    compare_end_to_end,
    compare_kv_compression,
    estimate_inference,
    schedule_block,
)
from repro.hw.program import GemmProgram, compile_gemm
from repro.hw.workflows import compare_workflows, workflow_cost
from repro.hw.sweeps import array_size_sweep, bandwidth_sweep, buffer_size_sweep
from repro.hw.roofline import (
    RooflinePoint,
    crossover_sequence_length,
    decode_vs_prefill_summary,
    model_roofline,
    roofline_point,
)
from repro.hw.params import DEFAULT_BUDGET, SystemBudget
from repro.hw.pe import (
    PE_MODELS,
    PE_ORDER,
    PEModel,
    get_pe,
    pe_area_efficiency,
    pe_energy_efficiency,
)
from repro.hw.simulator import GemmMetrics, SystemRun, simulate_gemm, simulate_model
from repro.hw.traffic import (
    StepTraffic,
    batching_traffic_advantage,
    decode_step_traffic,
    prefill_traffic,
)
from repro.hw.workloads import (
    Gemm,
    OpsBreakdown,
    context_ops,
    fig2_series,
    max_context_length,
    prefill_gemms,
)

__all__ = [
    "AndaOperatingPoint",
    "BitPlaneAddressGenerator",
    "BlockSchedule",
    "ExecutionReport",
    "Hbm2Channel",
    "InferenceEstimate",
    "SramBanks",
    "compare_dataflows",
    "compare_end_to_end",
    "compare_kv_compression",
    "compare_layouts",
    "compare_workflows",
    "dataflow_cost",
    "estimate_inference",
    "execute",
    "schedule_block",
    "summarize_overlap",
    "workflow_cost",
    "DEFAULT_BUDGET",
    "Gemm",
    "GemmProgram",
    "RooflinePoint",
    "array_size_sweep",
    "bandwidth_sweep",
    "buffer_size_sweep",
    "buffer_words_for",
    "compile_gemm",
    "crossover_sequence_length",
    "decode_vs_prefill_summary",
    "model_roofline",
    "roofline_point",
    "GemmMetrics",
    "OpsBreakdown",
    "PEModel",
    "PE_MODELS",
    "PE_ORDER",
    "SystemBudget",
    "SystemComparison",
    "SystemRun",
    "anda_operating_point",
    "anda_system_breakdown",
    "compare_architectures",
    "context_ops",
    "fig2_series",
    "geometric_mean",
    "get_pe",
    "max_context_length",
    "pe_area_efficiency",
    "pe_energy_efficiency",
    "prefill_gemms",
    "simulate_gemm",
    "simulate_model",
    "system_area_mm2",
    "StepTraffic",
    "batching_traffic_advantage",
    "decode_step_traffic",
    "prefill_traffic",
]
