"""Architecture parameter sweeps (the "diverse system performance" axis).

The paper claims Anda "demonstrates strong adaptability across various
application scenarios, accuracy requirements, and system performance".
The accuracy axes are covered by Fig. 14/18; this module covers the
*system* axis: how the Anda advantage over FP-FP shifts as the platform
changes — on-chip buffer capacity, DRAM bandwidth, and MXU array size.

Each sweep returns per-point :class:`~repro.hw.simulator.SystemRun`
aggregates for both architectures so callers can assert monotonicity
properties and plot trade-off curves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.precision import PrecisionCombination
from repro.errors import HardwareError
from repro.hw.params import DEFAULT_BUDGET, SystemBudget
from repro.hw.simulator import SystemRun, simulate_model

#: Default sweep grids.
BUFFER_GRID: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)  # x default
BANDWIDTH_GRID: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)
ARRAY_GRID: tuple[int, ...] = (8, 16, 32, 64)


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the varied value plus both systems' runs."""

    value: float
    fpfp: SystemRun
    anda: SystemRun

    @property
    def speedup(self) -> float:
        return self.fpfp.cycles / self.anda.cycles

    @property
    def energy_efficiency(self) -> float:
        return self.fpfp.energy_pj / self.anda.energy_pj


def _sweep(
    model_name: str,
    combination: PrecisionCombination,
    budgets: list[tuple[float, SystemBudget]],
) -> list[SweepPoint]:
    points = []
    for value, budget in budgets:
        points.append(
            SweepPoint(
                value=value,
                fpfp=simulate_model(model_name, "FP-FP", budget=budget),
                anda=simulate_model(model_name, "Anda", combination, budget=budget),
            )
        )
    return points


def buffer_size_sweep(
    model_name: str,
    combination: PrecisionCombination,
    scales: tuple[float, ...] = BUFFER_GRID,
    base: SystemBudget = DEFAULT_BUDGET,
) -> list[SweepPoint]:
    """Scale both on-chip buffers; bigger buffers cut DRAM re-streams."""
    if any(s <= 0 for s in scales):
        raise HardwareError("buffer scales must be positive")
    budgets = [
        (
            scale,
            replace(
                base,
                act_buffer_bytes=int(base.act_buffer_bytes * scale),
                wgt_buffer_bytes=int(base.wgt_buffer_bytes * scale),
            ),
        )
        for scale in scales
    ]
    return _sweep(model_name, combination, budgets)


def bandwidth_sweep(
    model_name: str,
    combination: PrecisionCombination,
    scales: tuple[float, ...] = BANDWIDTH_GRID,
    base: SystemBudget = DEFAULT_BUDGET,
) -> list[SweepPoint]:
    """Scale the DRAM channel; starved channels flip GeMMs memory-bound."""
    if any(s <= 0 for s in scales):
        raise HardwareError("bandwidth scales must be positive")
    budgets = [
        (scale, replace(base, dram_bandwidth=base.dram_bandwidth * scale))
        for scale in scales
    ]
    return _sweep(model_name, combination, budgets)


def array_size_sweep(
    model_name: str,
    combination: PrecisionCombination,
    dims: tuple[int, ...] = ARRAY_GRID,
    base: SystemBudget = DEFAULT_BUDGET,
) -> list[SweepPoint]:
    """Scale the square MXU; compute-bound speedups persist until the
    array outgrows the memory system."""
    if any(d < 1 for d in dims):
        raise HardwareError("array dimensions must be >= 1")
    budgets = [
        (float(dim), replace(base, mxu_rows=dim, mxu_cols=dim)) for dim in dims
    ]
    return _sweep(model_name, combination, budgets)
