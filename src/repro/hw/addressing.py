"""Bit-plane address generation for the activation buffer (Fig. 10).

The value proposition of the bit-plane layout is *regularity*: a group
with an ``M``-bit mantissa occupies exactly ``1 + M`` consecutive
64-bit words (sign word, then MSB..LSB planes), so variable precision
only changes the address *depth* per group — never the word width, and
never the stride pattern.  This module is a functional model of the
address generator that streams a tensor to the MXU, used to verify that
claim (every emitted address is a unit-stride burst) and to drive the
memory model's access counts.

Shared exponents live in a separate narrow array (the paper's 0.125 MB
exponent partition of the activation buffer), addressed by group index.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.core.anda import AndaTensor
from repro.errors import HardwareError


@dataclass(frozen=True)
class WordAccess:
    """One 64-bit buffer access emitted by the generator.

    Attributes:
        address: word address in the mantissa/sign partition.
        group: group index being streamed.
        kind: ``"sign"`` or ``"plane"``.
        plane: plane index for mantissa words (``None`` for signs).
    """

    address: int
    group: int
    kind: str
    plane: int | None = None


class BitPlaneAddressGenerator:
    """Streams buffer addresses for one Anda tensor, group by group.

    Args:
        n_groups: shared-exponent groups in the tensor.
        mantissa_bits: plane count per group.
        base_address: first word address of the tensor's allocation.
    """

    def __init__(self, n_groups: int, mantissa_bits: int, base_address: int = 0) -> None:
        if n_groups < 1:
            raise HardwareError(f"need at least one group, got {n_groups}")
        if not 1 <= mantissa_bits <= 16:
            raise HardwareError(
                f"mantissa bits must be in [1, 16], got {mantissa_bits}"
            )
        if base_address < 0:
            raise HardwareError(f"base address must be >= 0, got {base_address}")
        self.n_groups = n_groups
        self.mantissa_bits = mantissa_bits
        self.base_address = base_address

    @classmethod
    def for_tensor(cls, tensor: AndaTensor, base_address: int = 0) -> "BitPlaneAddressGenerator":
        return cls(tensor.n_groups, tensor.mantissa_bits, base_address)

    @property
    def words_per_group(self) -> int:
        """Address depth of one group: sign word plus M planes."""
        return 1 + self.mantissa_bits

    @property
    def total_words(self) -> int:
        return self.n_groups * self.words_per_group

    def group_base(self, group: int) -> int:
        """First word address of a group."""
        if not 0 <= group < self.n_groups:
            raise HardwareError(f"group {group} out of range [0, {self.n_groups})")
        return self.base_address + group * self.words_per_group

    def sign_address(self, group: int) -> int:
        return self.group_base(group)

    def plane_address(self, group: int, plane: int) -> int:
        """Address of one mantissa plane (plane 0 = MSB)."""
        if not 0 <= plane < self.mantissa_bits:
            raise HardwareError(
                f"plane {plane} out of range [0, {self.mantissa_bits})"
            )
        return self.group_base(group) + 1 + plane

    def exponent_address(self, group: int) -> int:
        """Byte address in the separate exponent partition."""
        if not 0 <= group < self.n_groups:
            raise HardwareError(f"group {group} out of range [0, {self.n_groups})")
        return group

    def stream(self) -> Iterator[WordAccess]:
        """Emit the full access sequence the MXU consumes.

        Per group: the sign word, then planes MSB-first — exactly the
        order :class:`repro.core.bitserial` consumes partial products.
        """
        for group in range(self.n_groups):
            yield WordAccess(self.sign_address(group), group, "sign")
            for plane in range(self.mantissa_bits):
                yield WordAccess(
                    self.plane_address(group, plane), group, "plane", plane
                )

    def is_unit_stride(self) -> bool:
        """True when the whole stream is one contiguous burst."""
        addresses = [access.address for access in self.stream()]
        return all(b == a + 1 for a, b in zip(addresses, addresses[1:]))


def buffer_words_for(
    row_length: int, mantissa_bits: int, rows: int = 1, group_size: int = 64
) -> int:
    """Words needed to buffer a ``rows x row_length`` activation tile."""
    groups_per_row = -(-row_length // group_size)
    return rows * groups_per_row * (1 + mantissa_bits)
