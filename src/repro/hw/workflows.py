"""Quantifying Fig. 8: the four FP-INT GeMM computation workflows.

Fig. 8 of the paper is a schematic comparing how W4A16 GeMMs execute
(a) on current GPUs, (b) on GPUs with FP-INT units, (c) under FIGNA's
dynamic conversion, and (d) under the Anda scheme, with qualitative
annotations — "(-) repetitive conversion", "(+) reduced access cost".
This module turns each annotation into a counted quantity for one GeMM:

* format conversions performed (weight dequants, activation FP->BFP
  conversions, output requants) and the bits they touch,
* activation bits resident in memory and moved per GeMM,
* the arithmetic class of the inner loop (FP FMA / FP-INT / INT).

Counts follow the workflows as drawn: FIGNA re-converts activations on
every access (once per column tile, the re-streaming granularity of the
output-stationary array), while Anda converts each produced tensor
exactly once, at the BPC on write-back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hw.params import DEFAULT_BUDGET, SystemBudget
from repro.hw.workloads import Gemm

#: The four workflows of Fig. 8, in subfigure order.
WORKFLOWS = ("GPU", "FP-INT GPU", "FIGNA", "Anda")


@dataclass(frozen=True)
class WorkflowCost:
    """Counted cost of one GeMM under one Fig. 8 workflow.

    Attributes:
        workflow: one of :data:`WORKFLOWS`.
        compute_class: inner-loop arithmetic ("fp16-fma", "fp-int",
            "int-parallel", "int-bit-serial").
        weight_dequants: INT4->FP16 weight expansions performed.
        act_conversions: FP16->BFP activation element conversions.
        output_requants: output element format conversions (FP32 to the
            storage format).
        act_memory_bits: activation bits resident in memory (input +
            output tensors of this GeMM).
        act_traffic_bits: activation bits streamed to the array,
            re-reads included.
    """

    workflow: str
    compute_class: str
    weight_dequants: float
    act_conversions: float
    output_requants: float
    act_memory_bits: float
    act_traffic_bits: float

    @property
    def total_conversions(self) -> float:
        return self.weight_dequants + self.act_conversions + self.output_requants


def workflow_cost(
    gemm: Gemm,
    workflow: str,
    mantissa_bits: int = 8,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> WorkflowCost:
    """Count the Fig. 8 quantities for one GeMM under one workflow.

    ``mantissa_bits`` parameterizes the Anda storage width (ignored by
    the FP16-resident workflows).
    """
    if workflow not in WORKFLOWS:
        raise HardwareError(
            f"unknown workflow {workflow!r}; known: {', '.join(WORKFLOWS)}"
        )
    if not 1 <= mantissa_bits <= 16:
        raise HardwareError(
            f"mantissa bits must be in [1, 16], got {mantissa_bits}"
        )
    col_tiles = math.ceil(gemm.cols / budget.mxu_cols)
    acts_in = gemm.rows * gemm.reduction * gemm.repeats
    acts_out = gemm.rows * gemm.cols * gemm.repeats
    weights = gemm.reduction * gemm.cols * gemm.repeats
    anda_bits = 1.0 + mantissa_bits + 8.0 / 64

    if workflow == "GPU":
        # Fig. 8(a): INT4 weights dequantized to FP16 before every use;
        # tensor cores run FP16 FMA; outputs truncate FP32->FP16.
        return WorkflowCost(
            workflow=workflow,
            compute_class="fp16-fma",
            weight_dequants=float(weights),
            act_conversions=0.0,
            output_requants=float(acts_out),
            act_memory_bits=16.0 * (acts_in + acts_out),
            act_traffic_bits=16.0 * (acts_in * col_tiles + acts_out),
        )
    if workflow == "FP-INT GPU":
        # Fig. 8(b): dedicated FP16xINT4 units remove the weight
        # dequant; alignment/normalization stays inside every MAC.
        return WorkflowCost(
            workflow=workflow,
            compute_class="fp-int",
            weight_dequants=0.0,
            act_conversions=0.0,
            output_requants=float(acts_out),
            act_memory_bits=16.0 * (acts_in + acts_out),
            act_traffic_bits=16.0 * (acts_in * col_tiles + acts_out),
        )
    if workflow == "FIGNA":
        # Fig. 8(c): FP16-resident activations converted to the BFP
        # compute format on *every* access — once per column-tile
        # re-stream — then INT compute and FP32->FP16 write-back.
        return WorkflowCost(
            workflow=workflow,
            compute_class="int-parallel",
            weight_dequants=0.0,
            act_conversions=float(acts_in * col_tiles),
            output_requants=float(acts_out),
            act_memory_bits=16.0 * (acts_in + acts_out),
            act_traffic_bits=16.0 * (acts_in * col_tiles + acts_out),
        )
    # Fig. 8(d): Anda-resident activations — zero conversions on the
    # read path; each produced element is compressed exactly once by
    # the BPC on write-back.
    return WorkflowCost(
        workflow=workflow,
        compute_class="int-bit-serial",
        weight_dequants=0.0,
        act_conversions=0.0,
        output_requants=float(acts_out),
        act_memory_bits=anda_bits * (acts_in + acts_out),
        act_traffic_bits=anda_bits * (acts_in * col_tiles + acts_out),
    )


def compare_workflows(
    gemm: Gemm,
    mantissa_bits: int = 8,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> dict[str, WorkflowCost]:
    """All four Fig. 8 workflows on one GeMM."""
    return {
        workflow: workflow_cost(gemm, workflow, mantissa_bits, budget)
        for workflow in WORKFLOWS
    }
