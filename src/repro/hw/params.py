"""Technology and system parameters of the hardware models.

Numbers stated by the paper are used verbatim (clock, buffer sizes,
HBM2 energy/bandwidth, array geometry).  Unit costs the paper does not
state (SRAM access energy, per-gate area/energy of the 16 nm node) are
calibrated: one anchor point — the paper's published FP-FP energy
breakdown and Table III absolute area/power — fixes the free constants,
and every other result (other architectures, other models, other
precisions) follows from the model structure.  Calibrated constants are
marked ``CALIBRATED`` below.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Operating clock of every compared system (paper Sec. V-A).
CLOCK_HZ = 285e6

#: Supply voltage (reported for completeness; folded into unit energies).
VDD = 0.8

#: HBM2 access energy, paper value (Jouppi et al.).
DRAM_PJ_PER_BIT = 3.9

#: HBM2 bandwidth, paper value.
DRAM_BANDWIDTH_BYTES_PER_S = 256e9

#: MXU geometry: 16 x 16 processing units.
MXU_ROWS = 16
MXU_COLS = 16

#: Elements per shared-exponent group / per PE dot-product slice.
GROUP_SIZE = 64

#: On-chip buffer capacities (paper Table III).
ACT_BUFFER_BYTES = int(1.125 * 2**20)  # 1 MB mantissa + 0.125 MB exponent
WGT_BUFFER_BYTES = int(1.0 * 2**20)

#: BPC lane count.
BPC_LANES = 16

#: Vector unit width (64 FP units, Table III).
VECTOR_UNIT_WIDTH = 64

#: CALIBRATED - SRAM access energy per bit.  Set so the FP-FP system's
#: compute:SRAM:DRAM energy split on the LLaMA-13B workload lands near
#: the paper's 42:11:48 (Fig. 17).
SRAM_PJ_PER_BIT = 0.036

#: CALIBRATED - energy per gate-equivalent switched once (pJ).  Anchors
#: absolute compute power to Table III's 54.3 mW MXU at 285 MHz.
ENERGY_PJ_PER_GATE_OP = 0.0016

#: CALIBRATED - silicon area per gate-equivalent (mm^2).  Anchors the
#: MXU area to Table III's 0.41 mm^2 at 16 nm.
AREA_MM2_PER_GATE = 9.5e-7

#: CALIBRATED - SRAM macro density (mm^2 per MiB) at 16 nm, anchoring
#: the activation/weight buffers to Table III.
SRAM_MM2_PER_MIB = 0.78

#: CALIBRATED - SRAM leakage+clock power per MiB (mW) while active.
SRAM_MW_PER_MIB = 7.4


@dataclass(frozen=True)
class SystemBudget:
    """Shared resource parity every compared system gets (Sec. V-A)."""

    clock_hz: float = CLOCK_HZ
    dram_bandwidth: float = DRAM_BANDWIDTH_BYTES_PER_S
    act_buffer_bytes: int = ACT_BUFFER_BYTES
    wgt_buffer_bytes: int = WGT_BUFFER_BYTES
    mxu_rows: int = MXU_ROWS
    mxu_cols: int = MXU_COLS

    @property
    def pe_count(self) -> int:
        return self.mxu_rows * self.mxu_cols

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth / self.clock_hz


DEFAULT_BUDGET = SystemBudget()
