"""Decode-phase DRAM traffic accounting for the serving engine.

:mod:`repro.hw.roofline` already shows *why* decode is the bandwidth
regime: one token per request means no weight reuse, so operational
intensity collapses to ~2 MACs/byte.  This module quantifies *how much*
traffic a serving step moves, which is the cost axis continuous
batching actually optimizes:

* **weights** — every FP-INT GeMM weight (plus the LM head) streams
  from DRAM once per model step.  A batched step amortizes that stream
  over the whole batch; one-at-a-time decode re-reads it per request.
* **KV cache** — each request re-reads its entire key/value history
  every step and appends one position.  This term scales with context
  length and is where the Anda KV format's compression
  (:func:`repro.llm.kv_quant.kv_bits_per_element`) multiplies through.
* **activations** — per-token hidden-state traffic; small next to the
  other two but kept for honest totals.

The numbers are analytic (bytes implied by the model config), matching
how :mod:`repro.hw.workloads` counts GeMM volumes — no simulator run
is needed per serving step.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.errors import HardwareError
from repro.llm.config import ModelConfig

#: Bytes per FP16 element, the substrate's weight/activation precision.
_FP16_BYTES = 2.0


@dataclass(frozen=True, slots=True)
class StepTraffic:
    """DRAM bytes moved by one serving step, split by stream.

    ``slots=True``: the engine folds one of these per lane per step
    into its accumulators, so construction stays allocation-light on
    the decode hot path.

    Attributes:
        weight_bytes: model weights streamed (once per batched step).
        kv_read_bytes: key/value history re-read across the batch.
        kv_write_bytes: newly appended key/value positions.
        activation_bytes: hidden-state reads/writes across the batch.
    """

    weight_bytes: float = 0.0
    kv_read_bytes: float = 0.0
    kv_write_bytes: float = 0.0
    activation_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return (
            self.weight_bytes
            + self.kv_read_bytes
            + self.kv_write_bytes
            + self.activation_bytes
        )

    def __add__(self, other: "StepTraffic") -> "StepTraffic":
        return StepTraffic(
            weight_bytes=self.weight_bytes + other.weight_bytes,
            kv_read_bytes=self.kv_read_bytes + other.kv_read_bytes,
            kv_write_bytes=self.kv_write_bytes + other.kv_write_bytes,
            activation_bytes=self.activation_bytes + other.activation_bytes,
        )


def _weight_bytes(config: ModelConfig) -> float:
    """FP16 bytes of every weight a decode step streams.

    Counts the per-token FP-INT GeMM weights (each MAC touches one
    weight element exactly once at sequence length 1) plus the LM head.
    """
    gemm_weights = config.fp_int_macs_per_token()
    lm_head = config.d_model * config.vocab_size
    return (gemm_weights + lm_head) * _FP16_BYTES


def _kv_elements_per_position(config: ModelConfig) -> int:
    """K + V elements one cached position holds across all layers."""
    return 2 * config.n_layers * config.d_model


def _activation_bytes_per_token(config: ModelConfig) -> float:
    """Hidden-state write+read per block plus embedding/head I/O."""
    return (2 * config.n_layers + 2) * config.d_model * _FP16_BYTES


def decode_step_traffic(
    config: ModelConfig,
    context_lengths: Sequence[int],
    kv_bits_per_element: "float | Sequence[float]" = 16.0,
    batched: bool = True,
    padded_read_positions: int = 0,
) -> StepTraffic:
    """Traffic of one decode step over a batch of requests.

    Args:
        config: architecture being served.
        context_lengths: per-request cached positions *before* the step
            (each request reads that history and appends one position).
        kv_bits_per_element: stored bits per cached element — 16 for
            FP16, :func:`repro.llm.kv_quant.kv_bits_per_element` for a
            compressed cache.  A *sequence* gives per-request widths
            (mixed-format serving: each request's history is read and
            its appended position written at its own width; padded
            reads, which belong to no single request, are charged at
            the batch's mean width).
        batched: if true, weights stream once for the whole batch
            (continuous batching); if false, once per request
            (one-at-a-time decode), which is the baseline the engine's
            speedup is measured against.
        padded_read_positions: extra key/value positions scored beyond
            the requests' real histories — the waste grouped attention's
            padded buckets introduce (``Bucket.padded_slots`` summed
            over the step, per layer group).  Charged as KV reads: a
            padded slot streams the same K/V bytes as a real one, which
            is exactly why the planner's pad-waste cap exists.
    """
    if padded_read_positions < 0:
        raise HardwareError(
            f"padded read positions must be >= 0, got {padded_read_positions}"
        )
    batch = len(context_lengths)
    uniform = isinstance(kv_bits_per_element, (int, float))
    if not uniform:
        per_request_bits = [float(bits) for bits in kv_bits_per_element]
        if len(per_request_bits) != batch:
            raise HardwareError(
                f"got {len(per_request_bits)} per-request KV widths for a "
                f"batch of {batch} requests"
            )
        if len(set(per_request_bits)) == 1:
            # A same-width batch takes the uniform arithmetic, keeping
            # its float rounding identical to the scalar call.
            uniform = True
            kv_bits_per_element = per_request_bits[0]
    if uniform:
        if kv_bits_per_element <= 0:
            raise HardwareError(
                f"kv bits per element must be positive, got {kv_bits_per_element}"
            )
        if batch == 0:
            return StepTraffic()
        if min(context_lengths) < 0:
            raise HardwareError("context lengths must be non-negative")
        kv_bytes_per_element = kv_bits_per_element / 8.0
        per_position = _kv_elements_per_position(config)
        history = sum(context_lengths) + padded_read_positions
        return StepTraffic(
            weight_bytes=_weight_bytes(config) * (1 if batched else batch),
            kv_read_bytes=history * per_position * kv_bytes_per_element,
            kv_write_bytes=batch * per_position * kv_bytes_per_element,
            activation_bytes=batch * _activation_bytes_per_token(config),
        )
    if any(bits <= 0 for bits in per_request_bits):
        raise HardwareError(
            f"kv bits per element must be positive, got {kv_bits_per_element}"
        )
    if batch == 0:
        return StepTraffic()
    if min(context_lengths) < 0:
        raise HardwareError("context lengths must be non-negative")
    mean_bits = sum(per_request_bits) / batch
    per_position = _kv_elements_per_position(config)
    kv_read = sum(
        context * bits / 8.0
        for context, bits in zip(context_lengths, per_request_bits)
    ) + padded_read_positions * mean_bits / 8.0
    kv_write = sum(bits / 8.0 for bits in per_request_bits)
    return StepTraffic(
        weight_bytes=_weight_bytes(config) * (1 if batched else batch),
        kv_read_bytes=kv_read * per_position,
        kv_write_bytes=kv_write * per_position,
        activation_bytes=batch * _activation_bytes_per_token(config),
    )


def decode_request_kv_bytes(
    config: ModelConfig, context_length: int, kv_bits_per_element: float = 16.0
) -> float:
    """One request's KV bytes within a decode step (read + write).

    The per-request share of :func:`decode_step_traffic`'s KV streams —
    its ``context_length`` history re-read plus the one appended
    position, at its own stored width — used by the engine to split a
    mixed-format step's KV traffic by format (padded reads belong to no
    request and are excluded from the split).
    """
    if context_length < 0:
        raise HardwareError(f"context length must be >= 0, got {context_length}")
    if kv_bits_per_element <= 0:
        raise HardwareError(
            f"kv bits per element must be positive, got {kv_bits_per_element}"
        )
    per_position = _kv_elements_per_position(config)
    return (context_length + 1) * per_position * kv_bits_per_element / 8.0


def prefill_traffic(
    config: ModelConfig,
    prompt_length: int,
    kv_bits_per_element: float = 16.0,
    cached_prefix_tokens: int = 0,
) -> StepTraffic:
    """Traffic of prefilling one prompt (whole-sequence forward).

    Prefill streams the weights once for the whole prompt (that reuse
    is why prefill is the compute-bound regime), writes the prompt's
    K/V history, and moves per-token activations.  Attention reads the
    growing in-flight history from on-chip buffers in this model, so no
    KV *read* traffic is charged to DRAM during prefill.

    ``cached_prefix_tokens`` accounts a prefix-cache hit: positions
    served from shared physical blocks are neither recomputed nor
    re-written, so only the uncached suffix is charged for KV writes
    and activation movement (:func:`prefix_cache_savings` quantifies
    the avoided bytes).
    """
    if prompt_length < 1:
        raise HardwareError(f"prompt length must be >= 1, got {prompt_length}")
    if not 0 <= cached_prefix_tokens < prompt_length:
        raise HardwareError(
            f"cached prefix ({cached_prefix_tokens}) must lie in "
            f"[0, {prompt_length}) — a fully cached prompt runs no prefill"
        )
    computed = prompt_length - cached_prefix_tokens
    kv_bytes_per_element = kv_bits_per_element / 8.0
    return StepTraffic(
        weight_bytes=_weight_bytes(config),
        kv_write_bytes=computed
        * _kv_elements_per_position(config)
        * kv_bytes_per_element,
        activation_bytes=computed * _activation_bytes_per_token(config),
    )


def prefill_chunk_traffic(
    config: ModelConfig,
    chunk_tokens: int,
    cached_context_tokens: int = 0,
    kv_bits_per_element: float = 16.0,
    include_weights: bool = True,
) -> StepTraffic:
    """Traffic of one prompt chunk inside a mixed serving step.

    Chunked prefill changes the prefill traffic shape in two ways.
    First, the chunk's queries attend over the *already cached*
    context — earlier chunks and any shared prefix — which, unlike the
    in-flight rows of a monolithic prefill, must be re-read from DRAM
    (that re-read is chunking's bandwidth cost, and it is exactly the
    KV stream the Anda format compresses).  Second, the weight stream
    is charged once per *model step*, not per chunk: a chunk riding
    along with decode tokens — or a later chunk in the same step —
    shares the step's weight stream, so pass ``include_weights=False``
    for it.  That sharing is the point of mixed steps: the prompt
    chunk amortizes the weight stream the decode batch already pays
    for.
    """
    if chunk_tokens < 1:
        raise HardwareError(f"chunk must hold >= 1 token, got {chunk_tokens}")
    if cached_context_tokens < 0:
        raise HardwareError(f"cached context must be >= 0, got {cached_context_tokens}")
    if kv_bits_per_element <= 0:
        raise HardwareError(
            f"kv bits per element must be positive, got {kv_bits_per_element}"
        )
    kv_bytes_per_element = kv_bits_per_element / 8.0
    per_position = _kv_elements_per_position(config)
    return StepTraffic(
        weight_bytes=_weight_bytes(config) if include_weights else 0.0,
        kv_read_bytes=cached_context_tokens * per_position * kv_bytes_per_element,
        kv_write_bytes=chunk_tokens * per_position * kv_bytes_per_element,
        activation_bytes=chunk_tokens * _activation_bytes_per_token(config),
    )


def prefix_cache_savings(
    config: ModelConfig,
    cached_prefix_tokens: int,
    kv_bits_per_element: float = 16.0,
) -> StepTraffic:
    """DRAM traffic a prefix-cache hit avoided for one prefill.

    The avoided streams are the cached positions' K/V writes and
    activation movement — the difference between a full
    :func:`prefill_traffic` charge and the suffix-only charge the
    paged engine actually pays.  (The weight stream is not avoided:
    the suffix forward still reads every weight once.)
    """
    if cached_prefix_tokens < 0:
        raise HardwareError(
            f"cached prefix tokens must be >= 0, got {cached_prefix_tokens}"
        )
    kv_bytes_per_element = kv_bits_per_element / 8.0
    return StepTraffic(
        kv_write_bytes=cached_prefix_tokens
        * _kv_elements_per_position(config)
        * kv_bytes_per_element,
        activation_bytes=cached_prefix_tokens
        * _activation_bytes_per_token(config),
    )


def batching_traffic_advantage(
    config: ModelConfig,
    batch_size: int,
    context_length: int,
    kv_bits_per_element: float = 16.0,
) -> float:
    """One-at-a-time bytes over batched bytes for one decode step.

    The headline serving ratio: how much DRAM traffic continuous
    batching saves at a given batch size and (uniform) context length.
    Grows toward ``batch_size`` when weights dominate (short contexts)
    and decays toward 1 as the per-request KV history takes over —
    which is exactly the regime where Anda KV compression extends the
    advantage.
    """
    if batch_size < 1:
        raise HardwareError(f"batch size must be >= 1, got {batch_size}")
    contexts = [context_length] * batch_size
    sequential = decode_step_traffic(
        config, contexts, kv_bits_per_element, batched=False
    )
    batched = decode_step_traffic(config, contexts, kv_bits_per_element, batched=True)
    return sequential.total_bytes / batched.total_bytes
