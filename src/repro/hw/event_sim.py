"""Event-driven execution of compiled GeMM programs (Fig. 13 dynamics).

The tile simulator (:mod:`repro.hw.simulator`) charges closed-form cycle
counts; the program compiler (:mod:`repro.hw.program`) emits the
controller instruction stream.  This module closes the loop: it
*executes* a compiled program on a machine model with one resource per
architectural unit, resolving the dependences the paper describes —

* the weight data dispatcher is double-buffered, so ``LOAD_WGT`` runs at
  most one group ahead of the MXU (Sec. IV-B "overlapped weight loading
  and computation"),
* the activation dispatcher streams sign/plane words just-in-time,
* the BPC compresses a finished tile *while the MXU computes the next*
  (Sec. IV-C "it can largely overlap with APU computations, with little
  impact on overall system performance").

The output is an :class:`ExecutionReport` with per-unit busy cycles and
the overlap statistics that substantiate those two claims as numbers
(tests pin them; the ablation bench prints them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareError
from repro.hw.program import GemmProgram, Instruction

#: Units of the machine model, in Fig. 13 order.
UNITS = ("wgt_loader", "act_loader", "mxu", "bpc", "store_port")

#: How many groups the double-buffered dispatchers may run ahead of the
#: MXU (one shadow register set per dispatcher).
PREFETCH_DEPTH = 2

_UNIT_OF_OPCODE = {
    "LOAD_WGT": "wgt_loader",
    "LOAD_ACT": "act_loader",
    "COMPUTE": "mxu",
    "DRAIN": "mxu",
    "COMPRESS": "bpc",
    "STORE": "store_port",
}


@dataclass(frozen=True)
class ScheduledInstruction:
    """One executed instruction with its resolved start/end times."""

    instruction: Instruction
    unit: str
    start: int
    end: int


@dataclass
class ExecutionReport:
    """Outcome of executing one program on the event machine.

    Attributes:
        total_cycles: makespan of the schedule.
        busy_cycles: per-unit occupied cycles.
        schedule: every instruction with its resolved interval.
    """

    total_cycles: int
    busy_cycles: dict[str, int]
    schedule: list[ScheduledInstruction] = field(repr=False, default_factory=list)

    def utilization(self, unit: str) -> float:
        """Busy fraction of one unit over the makespan."""
        if unit not in self.busy_cycles:
            raise HardwareError(f"unknown unit {unit!r}; known: {UNITS}")
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles[unit] / self.total_cycles

    def overlap_fraction(self, unit_a: str, unit_b: str) -> float:
        """Fraction of ``unit_a``'s busy time spent while ``unit_b`` is
        also busy (1.0 = fully hidden behind ``unit_b``).

        Per-unit schedules are non-overlapping and sorted by start (each
        unit serializes its instructions), so a two-pointer merge
        computes the intersection in linear time.
        """
        intervals_a = self._intervals(unit_a)
        intervals_b = self._intervals(unit_b)
        busy_a = sum(end - start for start, end in intervals_a)
        if busy_a == 0:
            return 1.0
        overlap = 0
        i = j = 0
        while i < len(intervals_a) and j < len(intervals_b):
            a_start, a_end = intervals_a[i]
            b_start, b_end = intervals_b[j]
            overlap += max(0, min(a_end, b_end) - max(a_start, b_start))
            if a_end <= b_end:
                i += 1
            else:
                j += 1
        return overlap / busy_a

    def stall_cycles(self) -> int:
        """Cycles the MXU spent idle inside the makespan."""
        return self.total_cycles - self.busy_cycles["mxu"]

    def _intervals(self, unit: str) -> list[tuple[int, int]]:
        if unit not in self.busy_cycles:
            raise HardwareError(f"unknown unit {unit!r}; known: {UNITS}")
        return [
            (item.start, item.end)
            for item in self.schedule
            if item.unit == unit and item.end > item.start
        ]


def execute(program: GemmProgram) -> ExecutionReport:
    """Execute a compiled GeMM program and resolve its schedule.

    Dependences enforced:

    * each unit processes its instructions in program order,
    * ``COMPUTE`` waits for its group's ``LOAD_WGT`` and ``LOAD_ACT``,
    * loaders run at most :data:`PREFETCH_DEPTH` compute slots ahead
      (double buffering),
    * ``DRAIN`` follows the tile's last ``COMPUTE`` on the MXU,
    * ``COMPRESS`` waits for the tile's ``DRAIN`` (then runs on the BPC
      concurrently with the next tile's compute),
    * ``STORE`` waits for the tile's ``COMPRESS`` (or ``DRAIN`` when the
      architecture stores FP16 directly).
    """
    unit_free = {unit: 0 for unit in UNITS}
    busy = {unit: 0 for unit in UNITS}
    schedule: list[ScheduledInstruction] = []

    compute_ends: list[int] = []  # end time of every COMPUTE, in order
    pending_loads: dict[tuple[str, int], int] = {}  # opcode kind -> end
    load_index = {"LOAD_WGT": 0, "LOAD_ACT": 0}
    tile_drain_end: dict[tuple[int, int], int] = {}
    tile_compress_end: dict[tuple[int, int], int] = {}

    def run(instruction: Instruction, unit: str, ready: int) -> int:
        start = max(ready, unit_free[unit])
        end = start + instruction.cycles
        unit_free[unit] = end
        busy[unit] += instruction.cycles
        schedule.append(ScheduledInstruction(instruction, unit, start, end))
        return end

    for instruction in program.instructions:
        unit = _UNIT_OF_OPCODE.get(instruction.opcode)
        if unit is None:
            raise HardwareError(f"unknown opcode {instruction.opcode!r}")

        if instruction.opcode in ("LOAD_WGT", "LOAD_ACT"):
            slot = load_index[instruction.opcode]
            load_index[instruction.opcode] += 1
            # Double buffering: this load may start once the compute
            # PREFETCH_DEPTH slots earlier has freed its register set.
            gate = 0
            if slot >= PREFETCH_DEPTH and slot - PREFETCH_DEPTH < len(compute_ends):
                gate = compute_ends[slot - PREFETCH_DEPTH]
            end = run(instruction, unit, gate)
            pending_loads[(instruction.opcode, slot)] = end

        elif instruction.opcode == "COMPUTE":
            slot = len(compute_ends)
            ready = max(
                pending_loads.get(("LOAD_WGT", slot), 0),
                pending_loads.get(("LOAD_ACT", slot), 0),
            )
            end = run(instruction, unit, ready)
            compute_ends.append(end)

        elif instruction.opcode == "DRAIN":
            end = run(instruction, unit, compute_ends[-1] if compute_ends else 0)
            tile_drain_end[instruction.tile] = end

        elif instruction.opcode == "COMPRESS":
            ready = tile_drain_end.get(instruction.tile, 0)
            end = run(instruction, unit, ready)
            tile_compress_end[instruction.tile] = end

        else:  # STORE
            ready = tile_compress_end.get(
                instruction.tile, tile_drain_end.get(instruction.tile, 0)
            )
            run(instruction, unit, ready)

    total = max((item.end for item in schedule), default=0)
    return ExecutionReport(total_cycles=total, busy_cycles=busy, schedule=schedule)


@dataclass(frozen=True)
class OverlapSummary:
    """The two Sec. IV overlap claims, quantified for one program."""

    total_cycles: int
    mxu_busy_cycles: int
    mxu_utilization: float
    bpc_hidden_fraction: float
    load_hidden_fraction: float

    @property
    def slowdown_vs_compute_bound(self) -> float:
        """Makespan relative to a perfectly-overlapped (MXU-bound) run."""
        if self.mxu_busy_cycles == 0:
            return 1.0
        return self.total_cycles / self.mxu_busy_cycles


def summarize_overlap(program: GemmProgram) -> OverlapSummary:
    """Execute a program and extract the overlap statistics."""
    report = execute(program)
    return OverlapSummary(
        total_cycles=report.total_cycles,
        mxu_busy_cycles=report.busy_cycles["mxu"],
        mxu_utilization=report.utilization("mxu"),
        bpc_hidden_fraction=report.overlap_fraction("bpc", "mxu"),
        load_hidden_fraction=report.overlap_fraction("wgt_loader", "mxu"),
    )
