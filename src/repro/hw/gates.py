"""Gate-level cost primitives for the PE area/energy models.

Costs are expressed in *gate equivalents* (GE, roughly NAND2-sized
units) using standard structural estimates:

* array multiplier ``m x n`` — partial-product array, ~``5·m·n`` GE,
* ripple/carry-select adder ``w`` bits — ~``9·w`` GE,
* balanced adder tree of ``k`` inputs — ``k-1`` adders of growing width,
* logarithmic barrel shifter ``w`` bits / ``s`` positions —
  ``~3·w·ceil(log2 s)`` GE of muxes,
* leading-zero counter, register, 2:1 mux — linear in width.

Energy per operation is proportional to the switched gates
(``GE x activity``); the proportionality constant and the GE-to-mm²
factor live in :mod:`repro.hw.params` and are calibrated once against
the paper's absolute Table III numbers.  All *relative* comparisons
(Fig. 15) are constant-free.
"""

from __future__ import annotations

import math

from repro.errors import HardwareError

#: Switching activity factor applied to dynamic energy estimates.
ACTIVITY = 0.3

_GE_PER_FULL_ADDER = 9.0
_GE_PER_MULT_CELL = 5.0
_GE_PER_MUX_BIT = 3.0
_GE_PER_REG_BIT = 6.0
_GE_PER_LZC_BIT = 4.0


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise HardwareError(f"{name} must be positive, got {value}")


def multiplier(m_bits: int, n_bits: int) -> float:
    """Array multiplier of an m-bit by n-bit product."""
    _check_positive(m_bits=m_bits, n_bits=n_bits)
    return _GE_PER_MULT_CELL * m_bits * n_bits


def adder(width: int) -> float:
    """Two-input adder of the given width."""
    _check_positive(width=width)
    return _GE_PER_FULL_ADDER * width


def adder_tree(inputs: int, input_width: int) -> float:
    """Balanced reduction tree of ``inputs`` operands.

    Level ``l`` (from the leaves) uses ``inputs / 2**(l+1)`` adders of
    width ``input_width + l``.
    """
    _check_positive(inputs=inputs, input_width=input_width)
    total = 0.0
    remaining = inputs
    width = input_width
    while remaining > 1:
        pairs = remaining // 2
        total += pairs * adder(width + 1)
        remaining = pairs + (remaining % 2)
        width += 1
    return total


def barrel_shifter(width: int, positions: int) -> float:
    """Logarithmic shifter over ``positions`` shift amounts."""
    _check_positive(width=width, positions=positions)
    stages = max(1, math.ceil(math.log2(positions)))
    return _GE_PER_MUX_BIT * width * stages


def leading_zero_counter(width: int) -> float:
    _check_positive(width=width)
    return _GE_PER_LZC_BIT * width


def register(width: int) -> float:
    _check_positive(width=width)
    return _GE_PER_REG_BIT * width


def mux(width: int) -> float:
    _check_positive(width=width)
    return _GE_PER_MUX_BIT * width


def comparator(width: int) -> float:
    """Magnitude comparator (subtractor-based)."""
    return adder(width)


def fp_align_normalize(product_bits: int, acc_bits: int) -> float:
    """Alignment + normalization + rounding logic of an FP accumulate.

    The dominant non-multiplier cost of FP arithmetic: the addend
    aligner across ``acc_bits + product_bits`` positions, the wide add,
    the leading-zero count and the normalization shift.
    """
    path = acc_bits + product_bits
    return (
        barrel_shifter(path, path)  # operand alignment
        + adder(path)  # significand addition
        + leading_zero_counter(path)  # renormalization count
        + barrel_shifter(acc_bits, acc_bits)  # normalization shift
        + adder(acc_bits // 2)  # rounding increment
        + adder(8)  # exponent arithmetic
    )


def energy_per_op(gate_equivalents: float) -> float:
    """Relative dynamic energy of one operation through a block."""
    return gate_equivalents * ACTIVITY
