"""Processing-element models: Anda APU and the baseline PEs.

Each :class:`PEModel` describes one architecture's processing element at
datapath parity (one 64-element group dot product per pass):

* **FP-FP** — FP16 tensor-core-style FMA lanes (the GPU-like baseline);
  INT4 weights are dequantized to FP16 before compute.
* **FP-INT** — dedicated FP16 x INT4 units (exponent alignment and
  normalization still per MAC).
* **iFPU** — bit-serial INT weights against FP activations expanded to
  a wide-mantissa BFP at compute time (Kim et al., ICLR'23).
* **FIGNA** — bit-parallel INT14 x INT4 with on-the-fly FP16->BFP
  conversion at every activation access (Jang et al., HPCA'24); the
  reduced-mantissa variants FIGNA-M11 / FIGNA-M8 shrink the multiplier.
* **Anda APU** — the bit-serial PE of this paper: per cycle, one
  mantissa bit plane of 64 elements is AND-selected against the INT4
  weights and reduced through an adder tree; a group costs
  ``mantissa_bits + 1`` cycles (planes + rescale/drain).

Two cost views are exposed:

* ``modeled_*`` — built from the gate-level primitives of
  :mod:`repro.hw.gates`; an independent structural estimate.
* ``area_rel`` / ``power_rel`` — the paper's published 16 nm synthesis
  results (Fig. 15a/b), used as the system simulator's energy/area
  inputs since RTL synthesis is unavailable in this environment.  The
  Fig. 15 benchmark prints both so the deviation is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hw import gates
from repro.hw.params import GROUP_SIZE

#: Cycles a bit-parallel PE spends on one 64-element group (4 MACs per
#: cycle at the common datapath width).
FULL_RATE_CYCLES = 16

#: Extra cycles the Anda APU spends per group on exponent rescale and
#: accumulator drain (calibrated by the paper's published speedups:
#: 16/(M+1) tracks Fig. 15c/16 exactly).
ANDA_GROUP_OVERHEAD = 1


@dataclass(frozen=True)
class PEModel:
    """Cost/performance model of one processing element type.

    Attributes:
        name: display name (paper spelling).
        compute_mantissa_bits: mantissa width the datapath processes
            (``None`` = runtime variable, Anda only).
        bit_serial: True for mantissa-bit-serial datapaths.
        area_rel: PE area normalized to FP-FP (paper Fig. 15a).
        power_rel: PE power at full rate normalized to FP-FP (Fig. 15b).
        act_storage: ``"fp16"`` or ``"anda"`` — activation memory format.
        converts_on_access: True when every activation read needs an
            FP16->BFP conversion (iFPU / FIGNA family).
        dequantizes_weights: True when INT weights are expanded to FP
            before compute (the GPU-like FP-FP path).
    """

    name: str
    compute_mantissa_bits: int | None
    bit_serial: bool
    area_rel: float
    power_rel: float
    act_storage: str
    converts_on_access: bool = False
    dequantizes_weights: bool = False

    @property
    def runtime_variable(self) -> bool:
        """True for Anda-style PEs whose mantissa length is a runtime
        parameter rather than a fixed datapath width."""
        return self.compute_mantissa_bits is None

    # -- timing -----------------------------------------------------------

    def cycles_per_group(self, mantissa_bits: int | None = None) -> int:
        """Cycles to reduce one 64-element group against 64 weights.

        Bit-parallel PEs stream the group at the common datapath width
        (mantissa bits processed per cycle scale inversely with the
        format width, the paper's equal-peak-bit-throughput parity);
        runtime-variable (Anda-style) PEs stream ``M`` planes plus the
        drain cycle.
        """
        if self.runtime_variable:
            if mantissa_bits is None:
                raise HardwareError(f"{self.name} needs a runtime mantissa length")
            if not 1 <= mantissa_bits <= 16:
                raise HardwareError(
                    f"mantissa length must be in [1, 16], got {mantissa_bits}"
                )
            return mantissa_bits + ANDA_GROUP_OVERHEAD
        return min(FULL_RATE_CYCLES, self.compute_mantissa_bits)

    # -- energy -------------------------------------------------------------

    def group_energy_rel(self, mantissa_bits: int | None = None) -> float:
        """Energy of one group dot product, in FP-FP-group units.

        For bit-parallel PEs the published power ratio *is* the
        per-workload energy ratio (reduced-mantissa variants finish
        sooner at proportionally higher power, so energy stays at the
        published figure).  For the Anda APU, energy scales with the
        planes actually streamed: ``power_rel`` corresponds to the full
        16-cycle group, so an ``M``-bit group costs
        ``power_rel * (M + 1) / 16`` (the exact scaling behind the
        Anda-M4..M13 bars of Fig. 15d).
        """
        if self.runtime_variable:
            cycles = self.cycles_per_group(mantissa_bits)
            return self.power_rel * cycles / FULL_RATE_CYCLES
        return self.power_rel

    # -- storage ---------------------------------------------------------------

    def act_bits_per_element(self, mantissa_bits: int | None = None) -> float:
        """Activation memory footprint per element in this PE's format."""
        if self.act_storage == "fp16":
            return 16.0
        if mantissa_bits is None:
            raise HardwareError("bit-plane storage needs a mantissa length")
        return 1.0 + mantissa_bits + 8.0 / GROUP_SIZE

    # -- structural (gate-model) estimates ------------------------------------

    def modeled_area_ge(self) -> float:
        """Independent gate-equivalent area estimate of this PE."""
        return _MODELED_AREA[self.name]

    def modeled_area_rel(self) -> float:
        """Gate-model area normalized to the FP-FP PE."""
        return self.modeled_area_ge() / _MODELED_AREA["FP-FP"]


def _fpfp_area() -> float:
    """4 lanes of FP16xFP16 FMA with FP32 accumulate + weight dequant."""
    lane = (
        gates.multiplier(11, 11)
        + gates.fp_align_normalize(product_bits=22, acc_bits=24)
        + gates.register(32) * 2
        + gates.mux(16)  # INT4 -> FP16 weight expansion
        + gates.adder(6)
    )
    return 4 * lane


def _fpint_area() -> float:
    """4 lanes of FP16xINT4 with FP32 accumulate (alignment remains)."""
    lane = (
        gates.multiplier(11, 4)
        + gates.fp_align_normalize(product_bits=15, acc_bits=24)
        + gates.register(32) * 2
    )
    return 4 * lane


def _ifpu_area() -> float:
    """Bit-serial INT weights against 24-bit aligned activations."""
    serial_lane = gates.mux(24) + gates.adder(28) + gates.register(28)
    converter = (
        4 * gates.barrel_shifter(24, 24)  # per-access mantissa aligners
        + 8 * gates.comparator(5)  # running max-exponent compare
    )
    accumulator = gates.fp_align_normalize(product_bits=24, acc_bits=24)
    return 16 * serial_lane + converter + accumulator


def _figna_area(mantissa_bits: int) -> float:
    """Bit-parallel INT(m)xINT4 with group conversion and requant."""
    lane = (
        gates.multiplier(mantissa_bits, 4)
        + gates.adder(32)
        + gates.register(32)
    )
    converter = 4 * gates.barrel_shifter(mantissa_bits, 16) + 8 * gates.comparator(5)
    requant = gates.fp_align_normalize(product_bits=16, acc_bits=24)
    return 4 * lane + converter + requant


def _anda_area() -> float:
    """64-wide bit-serial plane reduction + shift accumulator + FP stage."""
    plane_select = GROUP_SIZE * gates.mux(4)  # sign-applied weight gating
    tree = gates.adder_tree(GROUP_SIZE, 4)
    shift_acc = gates.adder(24) + gates.register(24)
    exponent_regs = gates.register(8) + GROUP_SIZE * gates.register(1)
    fp_stage = gates.fp_align_normalize(product_bits=16, acc_bits=24)
    weight_regs = 2 * GROUP_SIZE * gates.register(4)  # double-buffered
    return plane_select + tree + shift_acc + exponent_regs + fp_stage + weight_regs


_MODELED_AREA: dict[str, float] = {}


def _register_models() -> dict[str, PEModel]:
    _MODELED_AREA.update(
        {
            "FP-FP": _fpfp_area(),
            "FP-INT": _fpint_area(),
            "iFPU": _ifpu_area(),
            "FIGNA": _figna_area(14),
            "FIGNA-M11": _figna_area(11),
            "FIGNA-M8": _figna_area(8),
            "Anda": _anda_area(),
        }
    )
    models = [
        PEModel("FP-FP", 16, False, 1.00, 1.00, "fp16", dequantizes_weights=True),
        PEModel("FP-INT", 16, False, 0.63, 0.52, "fp16"),
        PEModel("iFPU", 16, False, 0.26, 0.28, "fp16", converts_on_access=True),
        PEModel("FIGNA", 16, False, 0.18, 0.17, "fp16", converts_on_access=True),
        PEModel("FIGNA-M11", 11, False, 0.15, 0.12, "fp16", converts_on_access=True),
        PEModel("FIGNA-M8", 8, False, 0.12, 0.10, "fp16", converts_on_access=True),
        PEModel("Anda", None, True, 0.23, 0.20, "anda"),
    ]
    return {model.name: model for model in models}


PE_MODELS: dict[str, PEModel] = _register_models()

#: Comparison order used by the paper's figures.
PE_ORDER: tuple[str, ...] = (
    "FP-FP",
    "FP-INT",
    "iFPU",
    "FIGNA",
    "FIGNA-M11",
    "FIGNA-M8",
    "Anda",
)


def get_pe(name: str) -> PEModel:
    """Look up a PE model by name."""
    try:
        return PE_MODELS[name]
    except KeyError:
        raise HardwareError(
            f"unknown PE {name!r}; known: {', '.join(PE_ORDER)}"
        ) from None


def pe_area_efficiency(name: str, mantissa_bits: int | None = None) -> float:
    """Fig. 15c metric: throughput / area, normalized to FP-FP.

    Baselines score ``1 / area_rel`` (equal MAC throughput at PE level);
    Anda scores ``(16 / (M + 1)) / area_rel`` thanks to early plane
    termination.
    """
    pe = get_pe(name)
    if pe.runtime_variable:
        speed = FULL_RATE_CYCLES / pe.cycles_per_group(mantissa_bits)
    else:
        speed = 1.0
    return speed / pe.area_rel


def pe_energy_efficiency(name: str, mantissa_bits: int | None = None) -> float:
    """Fig. 15d metric: workload energy efficiency, normalized to FP-FP."""
    return 1.0 / get_pe(name).group_energy_rel(mantissa_bits)
