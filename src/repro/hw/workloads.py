"""FP-INT GeMM workload extraction from paper-scale model shapes.

The hardware experiments operate on the *real* dimensions of the
benchmark LLMs (``repro.llm.config.PAPER_CONFIGS``): operation counts,
tile counts and data-movement volumes need shapes only, so no
functional execution of billion-parameter models is required.

Also provides the operation-share analysis behind Fig. 2 (FP-INT GeMM
proportion of total inference operations across context lengths).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import TensorKind
from repro.errors import HardwareError
from repro.llm.config import ModelConfig, get_config


@dataclass(frozen=True)
class Gemm:
    """One FP-INT GeMM: (rows x reduction) activations times weights.

    Attributes:
        kind: which activation tensor type feeds this GeMM.
        rows: token count (sequence length in prefill).
        reduction: dot-product length K.
        cols: output features N.
        repeats: identical instances per forward pass (layer count,
            folded multiplicity of fused projections).
    """

    kind: TensorKind
    rows: int
    reduction: int
    cols: int
    repeats: int = 1

    @property
    def macs(self) -> int:
        return self.rows * self.reduction * self.cols * self.repeats

    @property
    def weight_count(self) -> int:
        return self.reduction * self.cols * self.repeats

    @property
    def act_in_count(self) -> int:
        return self.rows * self.reduction * self.repeats

    @property
    def act_out_count(self) -> int:
        return self.rows * self.cols * self.repeats


def prefill_gemms(config: ModelConfig, sequence_length: int) -> list[Gemm]:
    """Per-forward-pass FP-INT GeMMs of a model at a sequence length.

    QKV is a single fused GeMM (one activation read, 3·d outputs); the
    LLaMA gate+up pair is likewise fused into one U-kind GeMM with
    ``2·ffn`` outputs, matching how the activation data is reused.
    """
    if sequence_length < 1:
        raise HardwareError(f"sequence length must be >= 1, got {sequence_length}")
    d, ffn, layers = config.d_model, config.ffn_dim, config.n_layers
    up_cols = 2 * ffn if config.gated_ffn else ffn
    return [
        Gemm(TensorKind.QKV, sequence_length, d, 3 * d, repeats=layers),
        Gemm(TensorKind.O, sequence_length, d, d, repeats=layers),
        Gemm(TensorKind.U, sequence_length, d, up_cols, repeats=layers),
        Gemm(TensorKind.D, sequence_length, ffn, d, repeats=layers),
    ]


def max_context_length(config: ModelConfig) -> int:
    """The "maximum acceptable input sequence length" of Sec. V-A.

    OPT and LLaMA(-2) models are trained for 2048 positions (LLaMA-2 for
    4096; the paper evaluates WikiText2 at 2048), so system experiments
    use 2048 tokens of prefill.
    """
    return 2048


# -- Fig. 2: operation-share analysis -----------------------------------------


@dataclass(frozen=True)
class OpsBreakdown:
    """Operation counts for generating/processing a full context.

    All counts are *operations* (1 MAC = 2 ops), matching the paper's
    TOPs axis.
    """

    fp_int_gemm_ops: float
    attention_ops: float
    other_ops: float

    @property
    def total_ops(self) -> float:
        return self.fp_int_gemm_ops + self.attention_ops + self.other_ops

    @property
    def fp_int_share(self) -> float:
        return self.fp_int_gemm_ops / self.total_ops


def context_ops(config: ModelConfig, context_length: int) -> OpsBreakdown:
    """Operation breakdown for a text-generation task over a context.

    FP-INT GeMMs: the weight projections, linear in processed tokens.
    Attention (FP-FP): QK^T and PV grow with the running context —
    summed over positions ``t = 1..C`` this is ``~ d * C^2`` per layer
    per product.  "Other" covers norms/softmax/activation vector work,
    a few ops per element per layer.
    """
    if context_length < 1:
        raise HardwareError(f"context length must be >= 1, got {context_length}")
    per_token_linear_macs = config.fp_int_macs_per_token()
    fp_int_ops = 2.0 * per_token_linear_macs * context_length

    # Sum over t of 2 products * d * t MACs = d * C * (C + 1).
    attention_macs = (
        config.n_layers * config.d_model * context_length * (context_length + 1)
    )
    attention_ops = 2.0 * attention_macs

    vector_ops = 10.0 * config.n_layers * config.d_model * context_length
    return OpsBreakdown(
        fp_int_gemm_ops=fp_int_ops,
        attention_ops=attention_ops,
        other_ops=vector_ops,
    )


def fig2_series(
    model_names: tuple[str, ...],
    context_lengths: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384),
) -> dict[str, dict[int, OpsBreakdown]]:
    """Fig. 2 data: per model and context length, total ops + share."""
    return {
        name: {c: context_ops(get_config(name), c) for c in context_lengths}
        for name in model_names
    }
