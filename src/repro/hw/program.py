"""Instruction-stream generation for the Anda top controller (Fig. 13).

The paper's system is programmed through an instruction memory that
drives the address generator, the MXU and the BPC (steps ❶-❼ of the
architecture walkthrough).  This module compiles one FP-INT GeMM into
that instruction stream:

========== =====================================================
opcode      meaning
========== =====================================================
LOAD_WGT    fetch a 16-column weight tile slice into the dispatcher
            (double-buffered; overlaps compute)
LOAD_ACT    stream one activation group's sign + plane words
COMPUTE     reduce the resident group against the weight tile
DRAIN       rescale and hand the 16x16 tile outputs to the BPC
COMPRESS    run the BPC over an output tile (Anda write-back)
STORE       write compressed outputs back to the activation buffer
========== =====================================================

The compiled program's cycle estimate is validated against the tile
simulator's independent count, and the per-opcode tallies feed no other
model — they exist so the control path is a testable artifact instead
of prose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator

from repro.core.precision import PrecisionCombination
from repro.errors import HardwareError
from repro.hw.params import DEFAULT_BUDGET, GROUP_SIZE, SystemBudget
from repro.hw.pe import PEModel, get_pe
from repro.hw.workloads import Gemm


@dataclass(frozen=True)
class Instruction:
    """One controller instruction.

    Attributes:
        opcode: one of the table above.
        tile: (row_tile, col_tile) the instruction belongs to.
        operand: opcode-specific index (group index, plane count, ...).
        cycles: issue-to-complete latency charged by the cycle model.
    """

    opcode: str
    tile: tuple[int, int]
    operand: int
    cycles: int


@dataclass(frozen=True)
class GemmProgram:
    """A compiled GeMM kernel plus its static cycle estimate."""

    gemm: Gemm
    architecture: str
    instructions: tuple[Instruction, ...]

    def opcode_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for instruction in self.instructions:
            counts[instruction.opcode] = counts.get(instruction.opcode, 0) + 1
        return counts

    def compute_cycles(self) -> int:
        """Cycles on the MXU critical path (LOAD_WGT/LOAD_ACT overlap
        compute via double buffering; DRAIN is the tile epilogue)."""
        return sum(
            instruction.cycles
            for instruction in self.instructions
            if instruction.opcode in ("COMPUTE", "DRAIN")
        )


def compile_gemm(
    gemm: Gemm,
    architecture: str | PEModel,
    combination: PrecisionCombination | None = None,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> GemmProgram:
    """Compile one GeMM instance into a controller instruction stream.

    ``repeats`` is intentionally ignored — a program describes one
    layer instance; the runtime loops it.
    """
    pe = architecture if isinstance(architecture, PEModel) else get_pe(architecture)
    mantissa = None
    if pe.runtime_variable:
        if combination is None:
            raise HardwareError(f"{pe.name} programs need a precision combination")
        mantissa = combination[gemm.kind]

    row_tiles = math.ceil(gemm.rows / budget.mxu_rows)
    col_tiles = math.ceil(gemm.cols / budget.mxu_cols)
    groups = math.ceil(gemm.reduction / GROUP_SIZE)
    group_cycles = pe.cycles_per_group(mantissa)

    def emit() -> Iterator[Instruction]:
        for row in range(row_tiles):
            for col in range(col_tiles):
                tile = (row, col)
                for group in range(groups):
                    yield Instruction("LOAD_WGT", tile, group, 4)
                    yield Instruction(
                        "LOAD_ACT", tile, group,
                        1 + (mantissa if mantissa is not None else 16),
                    )
                    yield Instruction("COMPUTE", tile, group, group_cycles)
                yield Instruction("DRAIN", tile, groups, 1)
                if pe.act_storage == "anda":
                    yield Instruction(
                        "COMPRESS", tile, mantissa or 0,
                        mantissa if mantissa is not None else 16,
                    )
                yield Instruction("STORE", tile, 0, 1)

    return GemmProgram(
        gemm=gemm, architecture=pe.name, instructions=tuple(emit())
    )


def validate_against_simulator(program: GemmProgram, combination=None) -> bool:
    """Check the program's compute-cycle estimate against the tile
    simulator's independent model (within the per-tile epilogue)."""
    from repro.hw.simulator import simulate_gemm

    single = Gemm(
        program.gemm.kind,
        program.gemm.rows,
        program.gemm.reduction,
        program.gemm.cols,
        repeats=1,
    )
    pe = get_pe(program.architecture)
    simulated = simulate_gemm(single, pe, combination).compute_cycles
    compiled = program.compute_cycles()
    row_tiles = math.ceil(single.rows / DEFAULT_BUDGET.mxu_rows)
    col_tiles = math.ceil(single.cols / DEFAULT_BUDGET.mxu_cols)
    epilogue_slack = row_tiles * col_tiles  # one DRAIN cycle per tile
    return abs(compiled - simulated) <= epilogue_slack
