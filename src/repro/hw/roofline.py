"""Roofline analysis: where FP-INT GeMMs are memory- vs compute-bound.

Complements the cycle simulator with the classic operational-intensity
view: a GeMM is memory-bound when its MACs-per-DRAM-byte falls below
the machine balance (peak MACs/cycle over DRAM bytes/cycle).  Two
regimes matter for LLM inference:

* **prefill** (long sequence, weight reuse across tokens) — deeply
  compute-bound, which is why Anda's cycle savings translate directly
  to speedup there (the paper's Sec. V-D setting);
* **decode** (one token at a time, no weight reuse) — operational
  intensity collapses to ~2 MACs per byte.  On the paper's edge-scale
  budget (256 PEs against 256 GB/s HBM2, machine balance ~1.1 MACs/B)
  decode *still* sits on the compute side — the array is small relative
  to its memory system, and GeMV underutilizes 15 of 16 PE rows, so
  Anda's shorter mantissas keep paying off.  Scale the array up to
  GPU-like proportions (see :class:`~repro.hw.params.SystemBudget`)
  and the same analysis flips decode firmly memory-bound, where only
  Anda's *compression* survives.

These helpers quantify both regimes and locate the crossover length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import PrecisionCombination
from repro.errors import HardwareError
from repro.hw.params import DEFAULT_BUDGET, SystemBudget
from repro.hw.pe import PEModel, get_pe
from repro.hw.simulator import simulate_gemm
from repro.hw.workloads import Gemm, prefill_gemms
from repro.llm.config import get_config


@dataclass(frozen=True)
class RooflinePoint:
    """Roofline coordinates of one GeMM on one architecture.

    Attributes:
        intensity: MACs per DRAM byte moved.
        peak_macs_per_cycle: the array's flat roofline ceiling.
        dram_bytes_per_cycle: the bandwidth roof's slope.
        compute_cycles / memory_cycles: the simulator's two cost axes.
    """

    gemm: Gemm
    architecture: str
    intensity: float
    peak_macs_per_cycle: float
    dram_bytes_per_cycle: float
    compute_cycles: float
    memory_cycles: float

    @property
    def machine_balance(self) -> float:
        """MACs per DRAM byte at which the two roofs intersect."""
        return self.peak_macs_per_cycle / self.dram_bytes_per_cycle

    @property
    def memory_bound(self) -> bool:
        return self.memory_cycles > self.compute_cycles

    @property
    def utilization(self) -> float:
        """Achieved fraction of peak MAC throughput.

        Counts both stall losses (memory-bound phases) and spatial
        underutilization (a GeMV filling one row of the output tile).
        """
        cycles = max(self.compute_cycles, self.memory_cycles)
        return self.gemm.macs / (cycles * self.peak_macs_per_cycle)


def roofline_point(
    gemm: Gemm,
    architecture: str | PEModel,
    combination: PrecisionCombination | None = None,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> RooflinePoint:
    """Place one GeMM on the roofline of one architecture."""
    pe = architecture if isinstance(architecture, PEModel) else get_pe(architecture)
    metrics = simulate_gemm(gemm, pe, combination, budget)
    if metrics.dram_bytes <= 0:
        raise HardwareError("GeMM moved no DRAM bytes; roofline undefined")
    intensity = gemm.macs / metrics.dram_bytes

    mantissa = combination[gemm.kind] if pe.runtime_variable else None
    macs_per_cycle = budget.pe_count * 64 / pe.cycles_per_group(mantissa)
    return RooflinePoint(
        gemm=gemm,
        architecture=pe.name,
        intensity=intensity,
        peak_macs_per_cycle=macs_per_cycle,
        dram_bytes_per_cycle=budget.dram_bytes_per_cycle,
        compute_cycles=metrics.compute_cycles,
        memory_cycles=metrics.memory_cycles,
    )


def model_roofline(
    model_name: str,
    architecture: str | PEModel,
    combination: PrecisionCombination | None = None,
    sequence_length: int = 2048,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> list[RooflinePoint]:
    """Roofline points for every FP-INT GeMM of one model prefill."""
    config = get_config(model_name)
    return [
        roofline_point(gemm, architecture, combination, budget)
        for gemm in prefill_gemms(config, sequence_length)
    ]


def decode_step_point(
    model_name: str,
    architecture: str | PEModel,
    combination: PrecisionCombination | None = None,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> list[RooflinePoint]:
    """Roofline of a single-token decode step (batch-1 GeMV regime)."""
    return model_roofline(
        model_name, architecture, combination, sequence_length=1, budget=budget
    )


def crossover_sequence_length(
    model_name: str,
    architecture: str | PEModel,
    combination: PrecisionCombination | None = None,
    budget: SystemBudget = DEFAULT_BUDGET,
    max_length: int = 4096,
) -> int:
    """Shortest prefill length at which the model is compute-bound.

    Binary-searches the sequence length where total compute cycles
    first exceed total memory cycles; returns ``max_length`` when the
    workload stays memory-bound throughout.
    """
    config = get_config(model_name)
    pe = architecture if isinstance(architecture, PEModel) else get_pe(architecture)

    def compute_bound(seq: int) -> bool:
        compute = memory = 0.0
        for gemm in prefill_gemms(config, seq):
            metrics = simulate_gemm(gemm, pe, combination, budget)
            compute += metrics.compute_cycles
            memory += metrics.memory_cycles
        return compute >= memory

    low, high = 1, max_length
    if not compute_bound(high):
        return max_length
    while low < high:
        mid = (low + high) // 2
        if compute_bound(mid):
            high = mid
        else:
            low = mid + 1
    return low


def decode_vs_prefill_summary(
    model_name: str,
    combination: PrecisionCombination,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> dict[str, float]:
    """Headline decode/prefill contrast for Anda vs FP-FP.

    Returns speedups and DRAM reductions in both regimes; the honest
    expectation (and the reason the paper evaluates prefill) is a
    decode speedup near 1 with the DRAM saving intact.
    """
    out: dict[str, float] = {}
    for regime, seq in (("prefill", 2048), ("decode", 1)):
        fpfp_c = fpfp_m = anda_c = anda_m = 0.0
        fpfp_d = anda_d = 0.0
        for gemm in prefill_gemms(get_config(model_name), seq):
            f = simulate_gemm(gemm, get_pe("FP-FP"), None, budget)
            a = simulate_gemm(gemm, get_pe("Anda"), combination, budget)
            fpfp_c += f.compute_cycles
            fpfp_m += f.memory_cycles
            anda_c += a.compute_cycles
            anda_m += a.memory_cycles
            fpfp_d += f.dram_bytes
            anda_d += a.dram_bytes
        out[f"{regime}_speedup"] = max(fpfp_c, fpfp_m) / max(anda_c, anda_m)
        out[f"{regime}_dram_reduction"] = fpfp_d / anda_d
    return out
