"""System area/power composition (the paper's Table III).

Builds the Anda system — MXU of 16x16 APUs, 16-lane BPC, 64-FPU vector
unit, 1.125 MB activation buffer, 1 MB weight buffer, top controller —
from the gate-level component model plus three calibrated silicon
constants (area per gate-equivalent, switched energy per gate, SRAM
density).  The calibration anchors are Table III's published MXU area
and power; every other component then follows from its own structure,
so the *distribution* across components is a genuine model output.

Also composes the baseline systems' total areas (common buffers/vector
unit + their PE array) — the denominators of Fig. 16's system-level
area efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import gates
from repro.hw.params import (
    ACT_BUFFER_BYTES,
    BPC_LANES,
    CLOCK_HZ,
    GROUP_SIZE,
    MXU_COLS,
    MXU_ROWS,
    SRAM_PJ_PER_BIT,
    VECTOR_UNIT_WIDTH,
    WGT_BUFFER_BYTES,
)
from repro.hw.pe import get_pe

#: CALIBRATED - silicon area per gate equivalent at 16 nm (mm^2).
#: Anchored so the 256-APU MXU lands on Table III's 0.41 mm^2.
AREA_MM2_PER_GE = 1.64e-7

#: CALIBRATED - effective switched energy per gate equivalent per cycle
#: (pJ), utilization-weighted; anchored to the MXU's 54.34 mW.
ENERGY_PJ_PER_GE_CYCLE = 7.6e-5

#: CALIBRATED - SRAM macro density (mm^2 / MiB) at 16 nm; reproduces the
#: paper's 0.87 / 0.80 mm^2 buffers.
SRAM_MM2_PER_MIB = 0.773

#: CALIBRATED - SRAM background (leakage + clock) power per MiB (mW).
SRAM_LEAK_MW_PER_MIB = 5.0

#: Activation buffer streaming rate: one 1024-bit bit-plane word per
#: cycle to the MXU plus the 80-bit BPC write-back lane (Fig. 13).
_ACT_BITS_PER_CYCLE = 1024 + 80

#: Weight buffer streaming rate: double-buffered 1024-bit loads spread
#: over a four-cycle dispatch window.
_WGT_BITS_PER_CYCLE = 256


def bpc_lane_ge() -> float:
    """Gate cost of one BPC lane (Fig. 12 structure, 64 elements)."""
    per_element = (
        gates.register(16)  # FP field extractor capture
        + gates.register(11)  # mantissa shift register
        + gates.comparator(5)  # exponent-difference countdown
        + gates.mux(1)  # plane bit select
    )
    max_exp_tree = (GROUP_SIZE - 1) * gates.comparator(5) + gates.register(5)
    packager = gates.register(80) + gates.mux(80)
    return GROUP_SIZE * per_element + max_exp_tree + packager


def vector_fpu_ge() -> float:
    """One vector-unit FP16 unit (FMA-class plus small special logic)."""
    return (
        gates.multiplier(11, 11)
        + gates.fp_align_normalize(product_bits=22, acc_bits=24)
        + gates.register(32) * 2
        + gates.mux(32)
    )


@dataclass(frozen=True)
class ComponentBudget:
    """Area and power of one system component."""

    name: str
    area_mm2: float
    power_mw: float


@dataclass(frozen=True)
class SystemBreakdown:
    """Table III: per-component area/power of one full system."""

    components: tuple[ComponentBudget, ...]

    @property
    def total_area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components)

    @property
    def total_power_mw(self) -> float:
        return sum(c.power_mw for c in self.components)

    def component(self, name: str) -> ComponentBudget:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(name)

    def area_share(self, name: str) -> float:
        return self.component(name).area_mm2 / self.total_area_mm2

    def power_share(self, name: str) -> float:
        return self.component(name).power_mw / self.total_power_mw


def _logic_power_mw(area_ge: float) -> float:
    return area_ge * ENERGY_PJ_PER_GE_CYCLE * CLOCK_HZ * 1e-9


def _buffer_budget(name: str, capacity_bytes: int, stream_bits_per_cycle: float) -> ComponentBudget:
    mib = capacity_bytes / 2**20
    access_mw = stream_bits_per_cycle * SRAM_PJ_PER_BIT * CLOCK_HZ * 1e-9
    return ComponentBudget(
        name=name,
        area_mm2=SRAM_MM2_PER_MIB * mib,
        power_mw=access_mw + SRAM_LEAK_MW_PER_MIB * mib,
    )


def anda_system_breakdown() -> SystemBreakdown:
    """Compose the Anda system (Table III rows)."""
    apu_ge = get_pe("Anda").modeled_area_ge()
    mxu_ge = MXU_ROWS * MXU_COLS * apu_ge
    bpc_ge = BPC_LANES * bpc_lane_ge()
    vector_ge = VECTOR_UNIT_WIDTH * vector_fpu_ge()
    controller_ge = 60_000.0  # top controller, instr. memory, addr. gen.

    components = (
        ComponentBudget("MXU", mxu_ge * AREA_MM2_PER_GE, _logic_power_mw(mxu_ge)),
        ComponentBudget(
            "BPC", bpc_ge * AREA_MM2_PER_GE, _logic_power_mw(bpc_ge) * 0.18
        ),  # BPC is active only on output write-back (~1/5 duty)
        ComponentBudget(
            "Vector Unit",
            vector_ge * AREA_MM2_PER_GE,
            _logic_power_mw(vector_ge) * 0.20,
        ),  # vector ops are a small slice of transformer runtime
        _buffer_budget("Activation Buffer", ACT_BUFFER_BYTES, _ACT_BITS_PER_CYCLE),
        _buffer_budget("Weight Buffer", WGT_BUFFER_BYTES, _WGT_BITS_PER_CYCLE),
        ComponentBudget(
            "Others",
            controller_ge * AREA_MM2_PER_GE,
            _logic_power_mw(controller_ge) * 0.02,
        ),
    )
    return SystemBreakdown(components=components)


def system_area_mm2(architecture: str) -> float:
    """Total system area of one architecture under the parity budget.

    Buffers, vector unit and controller are common to all systems
    (Sec. V-A memory parity); the PE array scales with the published PE
    area ratio; only Anda carries the BPC.
    """
    anda = anda_system_breakdown()
    common = (
        anda.component("Activation Buffer").area_mm2
        + anda.component("Weight Buffer").area_mm2
        + anda.component("Vector Unit").area_mm2
        + anda.component("Others").area_mm2
    )
    anda_mxu = anda.component("MXU").area_mm2
    pe = get_pe(architecture)
    anda_rel = get_pe("Anda").area_rel
    mxu = anda_mxu * (pe.area_rel / anda_rel)
    bpc = anda.component("BPC").area_mm2 if architecture == "Anda" else 0.0
    return common + mxu + bpc
