"""Dataflow-mapping ablation: why the MXU runs output-stationary.

The paper states the MXU "performs FP-INT GeMM operations following
typical output stationary dataflow [45]" (Sec. IV-D ❸) without
justifying the choice.  This module makes the justification testable by
costing the three classical dataflows on the same 16x16 array:

* **output-stationary (OS)** — each PE pins one output tile element;
  activations stream row-wise, weights column-wise; partial sums never
  leave the PE.  One FP32 accumulator per PE, no partial-sum traffic.
* **weight-stationary (WS)** — each PE pins a weight tile; activations
  stream through and *partial sums* stream between tiles, costing one
  psum write + read per reduction tile beyond the first.
* **input-stationary (IS)** — each PE pins an activation tile; weights
  stream and partial sums travel exactly as in WS.

Traffic is counted at the SRAM interface in bits, using each format's
activation width (Anda bit-plane or FP16) and 32-bit partial sums.
The Anda twist the ablation surfaces: OS is the only dataflow whose
inter-PE traffic does not grow when mantissas shrink — WS/IS move
32-bit partial sums regardless of M, so their overhead *ratio* worsens
exactly when Anda is winning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hw.params import DEFAULT_BUDGET, GROUP_SIZE, SystemBudget
from repro.hw.workloads import Gemm

#: Partial-sum word width moved between tiles by WS/IS dataflows.
PSUM_BITS = 32

DATAFLOWS = ("output-stationary", "weight-stationary", "input-stationary")


@dataclass(frozen=True)
class DataflowCost:
    """SRAM-interface traffic of one GeMM under one dataflow.

    Attributes:
        dataflow: one of :data:`DATAFLOWS`.
        act_bits: activation reads (format-dependent width).
        wgt_bits: weight reads (INT4).
        psum_bits: partial-sum spill/refill traffic (WS/IS only).
        out_bits: final output write-back.
    """

    dataflow: str
    act_bits: float
    wgt_bits: float
    psum_bits: float
    out_bits: float

    @property
    def total_bits(self) -> float:
        return self.act_bits + self.wgt_bits + self.psum_bits + self.out_bits


def _tiles(gemm: Gemm, budget: SystemBudget) -> tuple[int, int, int]:
    row_tiles = math.ceil(gemm.rows / budget.mxu_rows)
    col_tiles = math.ceil(gemm.cols / budget.mxu_cols)
    red_tiles = math.ceil(gemm.reduction / GROUP_SIZE)
    return row_tiles, col_tiles, red_tiles


def dataflow_cost(
    gemm: Gemm,
    dataflow: str,
    act_bits_per_element: float = 16.0,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> DataflowCost:
    """SRAM traffic of one GeMM instance under one dataflow.

    All three dataflows read each operand once per tile of the
    *other* operand's independent dimension (the classical reuse
    asymmetry); they differ in who carries the reduction:

    * OS holds partial sums in place — zero psum traffic, but both
      operands re-stream per output tile.
    * WS pins weights — activations stream once per column tile, and
      each of the ``red_tiles - 1`` extra reduction slices spills and
      refills a full output tile of partial sums.
    * IS mirrors WS with the operand roles swapped.
    """
    if dataflow not in DATAFLOWS:
        raise HardwareError(
            f"unknown dataflow {dataflow!r}; known: {', '.join(DATAFLOWS)}"
        )
    if act_bits_per_element <= 0:
        raise HardwareError(
            f"activation width must be positive, got {act_bits_per_element}"
        )
    row_tiles, col_tiles, red_tiles = _tiles(gemm, budget)
    acts = gemm.rows * gemm.reduction * act_bits_per_element
    wgts = gemm.reduction * gemm.cols * 4.0
    outs = gemm.rows * gemm.cols * act_bits_per_element

    if dataflow == "output-stationary":
        act_bits = acts * col_tiles
        wgt_bits = wgts * row_tiles
        psum_bits = 0.0
    elif dataflow == "weight-stationary":
        # Weights resident: read once.  Activations re-stream per column
        # tile; partial sums spill/refill per extra reduction tile.
        act_bits = acts * col_tiles
        wgt_bits = wgts
        psum_bits = 2.0 * gemm.rows * gemm.cols * PSUM_BITS * (red_tiles - 1)
    else:  # input-stationary
        act_bits = acts
        wgt_bits = wgts * row_tiles
        psum_bits = 2.0 * gemm.rows * gemm.cols * PSUM_BITS * (red_tiles - 1)
    scale = gemm.repeats
    return DataflowCost(
        dataflow=dataflow,
        act_bits=act_bits * scale,
        wgt_bits=wgt_bits * scale,
        psum_bits=psum_bits * scale,
        out_bits=outs * scale,
    )


@dataclass(frozen=True)
class DataflowComparison:
    """All three dataflows on one GeMM at one activation width."""

    gemm: Gemm
    act_bits_per_element: float
    costs: dict[str, DataflowCost]

    def best(self) -> str:
        """Dataflow with the least total SRAM traffic."""
        return min(self.costs, key=lambda name: self.costs[name].total_bits)

    def overhead(self, dataflow: str) -> float:
        """Total traffic of ``dataflow`` relative to the best one."""
        best = self.costs[self.best()].total_bits
        return self.costs[dataflow].total_bits / best


def compare_dataflows(
    gemm: Gemm,
    act_bits_per_element: float = 16.0,
    budget: SystemBudget = DEFAULT_BUDGET,
) -> DataflowComparison:
    """Cost every dataflow on one GeMM."""
    return DataflowComparison(
        gemm=gemm,
        act_bits_per_element=act_bits_per_element,
        costs={
            dataflow: dataflow_cost(gemm, dataflow, act_bits_per_element, budget)
            for dataflow in DATAFLOWS
        },
    )


def anda_act_bits(mantissa_bits: int) -> float:
    """Anda bit-plane storage width per element (sign + planes + exp share)."""
    if not 1 <= mantissa_bits <= 16:
        raise HardwareError(
            f"mantissa bits must be in [1, 16], got {mantissa_bits}"
        )
    return 1.0 + mantissa_bits + 8.0 / GROUP_SIZE
