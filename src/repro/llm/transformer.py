"""Transformer blocks and the causal language model.

Implements both architectures the paper benchmarks:

* **OPT family** — pre-LayerNorm blocks, ReLU feed-forward, learned
  position embeddings, biased projections.
* **LLaMA family** — pre-RMSNorm blocks, SwiGLU feed-forward, rotary
  position embeddings, bias-free projections.

The four FP-INT GeMM activation tensors (Fig. 3) route through the
model's shared :class:`~repro.llm.hooks.ActivationTap`:

========  =======================================  ==================
tap kind  activation                               consumed by
========  =======================================  ==================
QKV       normed block input                       Wq / Wk / Wv
O         attention context                        Wo
U         normed attention output                  W_up (and W_gate)
D         FFN intermediate (post-nonlinearity)     W_down
========  =======================================  ==================
"""

from __future__ import annotations

import numpy as np

from repro.core.precision import TensorKind
from repro.errors import ModelError
from repro.llm.attention import (
    BucketedAttention,
    BucketPlan,
    KVCache,
    MultiHeadAttention,
    active_scope,
    chunk_positions,
)
from repro.llm.autograd import Tensor, no_grad, softmax_cross_entropy
from repro.llm.config import ModelConfig
from repro.llm.hooks import ActivationTap
from repro.llm.layers import Embedding, Linear, Module, make_norm


class FeedForward(Module):
    """OPT-style two-layer ReLU feed-forward with U/D taps."""

    def __init__(
        self, config: ModelConfig, tap: ActivationTap, rng: np.random.Generator
    ) -> None:
        self.up_proj = Linear(config.d_model, config.ffn_dim, rng, bias=True)
        self.down_proj = Linear(config.ffn_dim, config.d_model, rng, bias=True)
        self.tap = tap

    def __call__(self, x: Tensor) -> Tensor:
        x = self.tap.apply(TensorKind.U, x)
        hidden = self.up_proj(x).relu()
        hidden = self.tap.apply(TensorKind.D, hidden)
        return self.down_proj(hidden)

    def step(self, x: np.ndarray) -> np.ndarray:
        if self.tap.quantizer is not None:
            x = self.tap.quantizer(TensorKind.U, x)
        hidden = x @ self.up_proj.weight.data + self.up_proj.bias.data
        hidden = np.maximum(hidden, 0.0)
        if self.tap.quantizer is not None:
            hidden = self.tap.quantizer(TensorKind.D, hidden)
        return (hidden @ self.down_proj.weight.data + self.down_proj.bias.data).astype(
            np.float32
        )


class GatedFeedForward(Module):
    """LLaMA-style SwiGLU feed-forward with U/D taps.

    The U tap feeds *both* the gate and up projections (they share the
    same input activation, which is why the BOPs model counts the U
    GeMM twice for gated FFNs).
    """

    def __init__(
        self, config: ModelConfig, tap: ActivationTap, rng: np.random.Generator
    ) -> None:
        self.gate_proj = Linear(config.d_model, config.ffn_dim, rng, bias=False)
        self.up_proj = Linear(config.d_model, config.ffn_dim, rng, bias=False)
        self.down_proj = Linear(config.ffn_dim, config.d_model, rng, bias=False)
        self.tap = tap

    def __call__(self, x: Tensor) -> Tensor:
        x = self.tap.apply(TensorKind.U, x)
        hidden = self.gate_proj(x).silu() * self.up_proj(x)
        hidden = self.tap.apply(TensorKind.D, hidden)
        return self.down_proj(hidden)

    def step(self, x: np.ndarray) -> np.ndarray:
        if self.tap.quantizer is not None:
            x = self.tap.quantizer(TensorKind.U, x)
        gate = x @ self.gate_proj.weight.data
        gate = gate / (1.0 + np.exp(-gate)) * (x @ self.up_proj.weight.data)
        if self.tap.quantizer is not None:
            gate = self.tap.quantizer(TensorKind.D, gate)
        return (gate @ self.down_proj.weight.data).astype(np.float32)


class TransformerBlock(Module):
    """Pre-norm residual block: attention then feed-forward."""

    def __init__(
        self, config: ModelConfig, tap: ActivationTap, rng: np.random.Generator
    ) -> None:
        self.attn_norm = make_norm(config.norm, config.d_model)
        self.attention = MultiHeadAttention(config, tap, rng)
        self.ffn_norm = make_norm(config.norm, config.d_model)
        self.ffn: Module = (
            GatedFeedForward(config, tap, rng)
            if config.gated_ffn
            else FeedForward(config, tap, rng)
        )

    def __call__(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.attn_norm(x))
        return x + self.ffn(self.ffn_norm(x))

    def step(self, x: np.ndarray, cache: KVCache) -> np.ndarray:
        with no_grad():
            normed = self.attn_norm(Tensor(x)).data
            x = x + self.attention.step(normed, cache)
            normed = self.ffn_norm(Tensor(x)).data
            return x + self.ffn.step(normed)

    def step_batch(
        self,
        x: np.ndarray,
        caches: list[KVCache],
        plan: BucketPlan | None = None,
        dispatcher: BucketedAttention | None = None,
    ) -> np.ndarray:
        """One decode step for a batch of requests with per-request caches.

        Norms and the feed-forward reduce along the last axis only, so
        they batch row-identically as-is; attention routes through
        :meth:`~repro.llm.attention.MultiHeadAttention.step_batch`,
        grouped into KV-length buckets when a ``plan`` is given.
        """
        with no_grad():
            normed = self.attn_norm(Tensor(x)).data
            x = x + self.attention.step_batch(
                normed, caches, plan=plan, dispatcher=dispatcher
            )
            normed = self.ffn_norm(Tensor(x)).data
            return x + self.ffn.step(normed)

    def step_mixed(
        self, x: np.ndarray, caches: list[KVCache], lengths: list[int]
    ) -> np.ndarray:
        """One mixed step over variable-length per-request segments.

        Same row-local batching argument as :meth:`step_batch`, with
        attention routed through
        :meth:`~repro.llm.attention.MultiHeadAttention.step_mixed` so
        decodes and prompt chunks share the step's GeMMs.
        """
        with no_grad():
            normed = self.attn_norm(Tensor(x)).data
            x = x + self.attention.step_mixed(normed, caches, lengths)
            normed = self.ffn_norm(Tensor(x)).data
            return x + self.ffn.step(normed)


class CausalLM(Module):
    """A causal language model in the OPT or LLaMA style.

    Args:
        config: architecture description (see
            :mod:`repro.llm.config`); the config's ``seed`` initializes
            the weights deterministically.
    """

    def __init__(self, config: ModelConfig) -> None:
        rng = np.random.default_rng(config.seed)
        self.tap = ActivationTap()
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng)
        self.position_embedding = (
            Embedding(config.max_seq_len, config.d_model, rng)
            if config.family == "opt"
            else None
        )
        self.blocks = [
            TransformerBlock(config, self.tap, rng) for _ in range(config.n_layers)
        ]
        self.final_norm = make_norm(config.norm, config.d_model)
        self.lm_head = Linear(config.d_model, config.vocab_size, rng, bias=False)

    # -- full-sequence path -----------------------------------------------

    def _embed(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ModelError(f"tokens must be (batch, time), got shape {tokens.shape}")
        if tokens.shape[1] > self.config.max_seq_len:
            raise ModelError(
                f"sequence length {tokens.shape[1]} exceeds max_seq_len "
                f"{self.config.max_seq_len}"
            )
        hidden = self.token_embedding(tokens)
        if self.position_embedding is not None:
            positions = np.arange(tokens.shape[1])
            hidden = hidden + self.position_embedding(positions)
        return hidden

    def forward(self, tokens: np.ndarray) -> Tensor:
        """Logits for every position: ``(batch, time, vocab)``."""
        hidden = self._embed(tokens)
        for block in self.blocks:
            hidden = block(hidden)
        return self.lm_head(self.final_norm(hidden))

    __call__ = forward

    def loss(self, tokens: np.ndarray) -> Tensor:
        """Mean next-token cross entropy over a ``(batch, time)`` batch."""
        tokens = np.asarray(tokens)
        if tokens.shape[1] < 2:
            raise ModelError("need at least two tokens for a next-token loss")
        logits = self.forward(tokens[:, :-1])
        return softmax_cross_entropy(logits, tokens[:, 1:])

    # -- incremental decode path --------------------------------------------

    def new_cache(self) -> list[KVCache]:
        """Fresh per-layer KV caches for incremental decoding."""
        return [KVCache() for _ in self.blocks]

    def forward_step(
        self, tokens: np.ndarray, caches: list[KVCache]
    ) -> np.ndarray:
        """Extend cached decoding by ``tokens`` (``(batch, new)`` ids).

        Returns plain-numpy logits ``(batch, new, vocab)``.
        """
        tokens = np.asarray(tokens)
        start = caches[0].length
        with no_grad():
            hidden = self.token_embedding(tokens).data
            if self.position_embedding is not None:
                positions = np.arange(start, start + tokens.shape[1])
                hidden = hidden + self.position_embedding(positions).data
            for block, cache in zip(self.blocks, caches):
                hidden = block.step(hidden, cache)
            normed = self.final_norm(Tensor(hidden)).data
            return normed @ self.lm_head.weight.data

    def forward_decode_batch(
        self,
        tokens: np.ndarray,
        request_caches: list[list[KVCache]],
        dispatcher: BucketedAttention | None = None,
    ) -> np.ndarray:
        """Decode one token for many requests in a single batched step.

        This is the serving engine's model step: request states are
        gathered into one ``(batch, 1)`` token array, the big GeMMs
        (projections, FFN, LM head) run once over the whole batch, and
        attention consults each request's own exact-length cache — so
        requests may sit at arbitrary, different positions.  Every row
        of the result is bitwise identical to running that request alone
        through :meth:`forward_step`.

        With a ``dispatcher``, attention runs grouped: the step's
        post-append KV lengths are bucketed once
        (:meth:`~repro.llm.attention.BucketedAttention.plan` — all
        layers sit at the same lengths, so the plan is shared) and each
        layer launches one attention pipeline per bucket instead of one
        per request, still token-bitwise identical.

        Args:
            tokens: ``(batch, 1)`` next-token ids, one row per request.
            request_caches: per request, the per-layer cache list that
                earlier :meth:`forward_step` / ``forward_decode_batch``
                calls extended.
            dispatcher: optional grouped-attention dispatcher.

        Returns:
            Plain-numpy logits ``(batch, 1, vocab)``.
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 2 or tokens.shape[1] != 1:
            raise ModelError(
                f"decode batch expects (batch, 1) token ids, got {tokens.shape}"
            )
        if len(request_caches) != tokens.shape[0]:
            raise ModelError(
                f"got {len(request_caches)} cache sets for "
                f"{tokens.shape[0]} requests"
            )
        starts = np.array([caches[0].length for caches in request_caches])
        if (starts + 1).max(initial=0) > self.config.max_seq_len:
            raise ModelError(
                f"a request would exceed max_seq_len {self.config.max_seq_len}"
            )
        plan: BucketPlan | None = None
        if dispatcher is not None and len(request_caches) > 1:
            # Post-append lengths: each cache gains one position this
            # step before attention reads it.
            plan = dispatcher.plan([int(start) + 1 for start in starts])
        tracer = active_scope().tracer
        if tracer is not None:
            tracer.begin(
                "step.decode_batch",
                batch=tokens.shape[0],
                grouped=plan is not None,
            )
        with no_grad():
            hidden = self.token_embedding(tokens).data
            if self.position_embedding is not None:
                hidden = hidden + self.position_embedding(starts[:, None]).data
            for layer_index, block in enumerate(self.blocks):
                layer_caches = [caches[layer_index] for caches in request_caches]
                hidden = block.step_batch(
                    hidden, layer_caches, plan=plan, dispatcher=dispatcher
                )
            normed = self.final_norm(Tensor(hidden)).data
            logits = normed @ self.lm_head.weight.data
        if tracer is not None:
            tracer.end("step.decode_batch")
        return logits

    def forward_mixed_step(
        self,
        chunk_groups: list[np.ndarray],
        chunk_caches: list[list[KVCache]],
        decode_tokens: np.ndarray | None = None,
        decode_caches: list[list[KVCache]] | None = None,
        dispatcher: BucketedAttention | None = None,
    ) -> tuple[list[np.ndarray], np.ndarray | None]:
        """Run prompt chunks and decodes for many requests in one step.

        This is the chunked-prefill serving step, executed as two lanes
        inside one invocation:

        * the **chunk lane** flattens every prompt chunk along the time
          axis into one ``(1, total, d_model)`` pass
          (:meth:`~repro.llm.transformer.TransformerBlock.step_mixed`),
          so its GeMM rows are bitwise identical to a monolithic
          prefill of the same prompt;
        * the **decode lane** is :meth:`forward_decode_batch`, keeping
          each decode row bitwise identical to sequential decoding.

        The two lanes deliberately do *not* share one GeMM: OpenBLAS
        switches accumulation kernels between single-row (``M == 1``)
        and multi-row (``M >= 2``) matmuls, so folding decode rows into
        the chunk lane's flat GeMM would silently change decode logits
        in the low bits.  Keeping the lanes separate preserves both
        bitwise guarantees at once.  The chunk lane runs *first*: if it
        raises, no decode cache has been touched, so the engine can
        release the chunk participants' caches and recover.

        Args:
            chunk_groups: per chunked request, a 1-D array of prompt
                token ids (length >= 1) continuing that request's
                cache.
            chunk_caches: per chunked request, the per-layer cache list
                to extend, aligned with ``chunk_groups``.
            decode_tokens: optional ``(batch, 1)`` next-token ids for
                the decode lane.
            decode_caches: per decode request, the per-layer cache
                list (required when ``decode_tokens`` is given).
            dispatcher: optional grouped-attention dispatcher for the
                decode lane (the chunk lane always runs per segment).

        Returns:
            ``(chunk_logits, decode_logits)`` — per chunk, plain-numpy
            logits ``(len(group), vocab)``; decode logits ``(batch, 1,
            vocab)`` or ``None`` when the decode lane is empty.
        """
        if not chunk_groups and decode_tokens is None:
            raise ModelError("mixed step needs at least one chunk or decode")
        chunk_logits = self._forward_chunk_lane(chunk_groups, chunk_caches)
        decode_logits = None
        if decode_tokens is not None:
            decode_logits = self.forward_decode_batch(
                decode_tokens, decode_caches or [], dispatcher=dispatcher
            )
        return chunk_logits, decode_logits

    def _forward_chunk_lane(
        self,
        chunk_groups: list[np.ndarray],
        chunk_caches: list[list[KVCache]],
    ) -> list[np.ndarray]:
        """Flat-GeMM pass over every prompt chunk of a mixed step."""
        if not chunk_groups:
            return []
        if len(chunk_caches) != len(chunk_groups):
            raise ModelError(
                f"got {len(chunk_caches)} cache sets for "
                f"{len(chunk_groups)} chunk groups"
            )
        groups = [np.asarray(group).reshape(-1) for group in chunk_groups]
        if min(group.shape[0] for group in groups) < 1:
            raise ModelError("every chunk group must hold at least one token")
        lengths = [group.shape[0] for group in groups]
        starts = [caches[0].length for caches in chunk_caches]
        if max(
            start + length for start, length in zip(starts, lengths)
        ) > self.config.max_seq_len:
            raise ModelError(
                f"a request would exceed max_seq_len {self.config.max_seq_len}"
            )
        flat = np.concatenate(groups)[None, :]  # (1, total)
        tracer = active_scope().tracer
        if tracer is not None:
            tracer.begin(
                "step.prefill_chunks",
                chunks=len(groups),
                tokens=int(flat.shape[1]),
            )
        with no_grad():
            hidden = self.token_embedding(flat).data
            if self.position_embedding is not None:
                # Shared with the attention layers' rotary gather: one
                # memoized build per mixed step, not one per consumer.
                positions = chunk_positions(starts, lengths)
                hidden = hidden + self.position_embedding(positions).data
            for layer_index, block in enumerate(self.blocks):
                layer_caches = [caches[layer_index] for caches in chunk_caches]
                hidden = block.step_mixed(hidden, layer_caches, lengths)
            normed = self.final_norm(Tensor(hidden)).data
            logits = normed @ self.lm_head.weight.data  # (1, total, vocab)
        if tracer is not None:
            tracer.end("step.prefill_chunks")
        split: list[np.ndarray] = []
        offset = 0
        for length in lengths:
            split.append(logits[0, offset : offset + length, :])
            offset += length
        return split

    # -- tap plumbing ----------------------------------------------------------

    def set_quantizer(self, quantizer) -> None:
        """Install (or clear, with ``None``) the activation quantizer."""
        self.tap.quantizer = quantizer

    def set_recorder(self, recorder) -> None:
        """Install (or clear, with ``None``) the activation recorder."""
        self.tap.recorder = recorder


def build_model(config: ModelConfig) -> CausalLM:
    """Construct a freshly initialized model for a config."""
    return CausalLM(config)
