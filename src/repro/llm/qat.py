"""Anda-aware quantization-aware training (the paper's future work).

Sec. VI closes with: "Future research could explore using Anda for QAT,
potentially enhancing accuracy while reducing computational costs."
This module implements that extension on the numpy substrate:

* the activation taps run in *straight-through estimator* (STE) mode —
  forward passes see exactly the Anda-quantized activations the
  hardware would compute with, backward passes copy gradients through
  the quantizer unchanged,
* a short Adam fine-tune then adapts the weights to the quantization
  noise of an aggressive precision combination,
* :func:`qat_recovery` measures how much of the PTQ perplexity
  degradation the fine-tune recovers.

The headline demonstration (``benchmarks/bench_qat.py``,
``examples/qat_finetune.py``): at mantissa lengths *below* what the
adaptive search would accept post-training, a few hundred QAT steps
recover a large fraction of the lost perplexity — which is what makes
combinations like ``[4, 4, 4, 4]`` deployable when a training budget
exists.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.precision import PrecisionCombination
from repro.errors import ModelError
from repro.llm.hooks import anda_quantizer
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.training import Adam, cosine_schedule, sample_batch
from repro.llm.transformer import CausalLM


@contextlib.contextmanager
def straight_through_anda(
    model: CausalLM,
    combination: PrecisionCombination,
    rounding: str = "truncate",
):
    """Enable STE Anda quantization on a model's taps inside the context.

    The previous tap state is restored on exit, so evaluation code
    running afterwards sees the model exactly as before.
    """
    tap = model.tap
    previous_quantizer = tap.quantizer
    previous_ste = tap.straight_through
    tap.quantizer = anda_quantizer(combination, rounding=rounding)
    tap.straight_through = True
    try:
        yield model
    finally:
        tap.quantizer = previous_quantizer
        tap.straight_through = previous_ste


@dataclass
class QatResult:
    """Outcome of one Anda QAT fine-tune.

    Attributes:
        combination: the precision combination trained for.
        ppl_fp: perplexity of the full-precision model.
        ppl_ptq: quantized perplexity *before* fine-tuning (pure PTQ).
        ppl_qat: quantized perplexity *after* fine-tuning.
        losses: training-loss trajectory.
    """

    combination: PrecisionCombination
    ppl_fp: float
    ppl_ptq: float
    ppl_qat: float
    losses: list[float] = field(default_factory=list)

    @property
    def ptq_degradation(self) -> float:
        """PTQ perplexity increase over the FP model (0.05 = +5%)."""
        return self.ppl_ptq / self.ppl_fp - 1.0

    @property
    def qat_degradation(self) -> float:
        """Post-QAT perplexity increase over the FP model."""
        return self.ppl_qat / self.ppl_fp - 1.0

    @property
    def recovered_fraction(self) -> float:
        """Share of the PTQ damage the fine-tune repaired.

        1.0 means QAT reached FP perplexity; 0.0 means no improvement;
        negative values mean the fine-tune hurt.
        """
        damage = self.ppl_ptq - self.ppl_fp
        if damage <= 0:
            return 1.0
        return (self.ppl_ptq - self.ppl_qat) / damage


def fine_tune(
    model: CausalLM,
    tokens: np.ndarray,
    combination: PrecisionCombination,
    steps: int = 100,
    batch_size: int = 8,
    seq_len: int = 64,
    learning_rate: float = 3e-4,
    rounding: str = "truncate",
    seed: int = 0,
) -> list[float]:
    """Fine-tune a model in place under STE Anda quantization.

    Args:
        model: trained model to adapt (modified in place).
        tokens: training token stream.
        combination: mantissa lengths the model should adapt to.
        steps: optimizer steps.
        batch_size / seq_len: batch geometry per step.
        learning_rate: Adam peak rate (cosine-decayed).  QAT uses a
            rate well below pre-training — the weights only need to
            absorb quantization noise, not relearn the task.
        rounding: Anda rounding mode ("stochastic" dithers the
            truncation, the FAST recipe for training under BFP).
        seed: batch-sampling seed.

    Returns:
        The per-step training losses.
    """
    if steps < 1:
        raise ModelError(f"steps must be >= 1, got {steps}")
    combination.validate()
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), learning_rate=learning_rate)
    losses: list[float] = []
    with straight_through_anda(model, combination, rounding=rounding):
        for step in range(steps):
            batch = sample_batch(tokens, batch_size, seq_len, rng)
            optimizer.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            optimizer.step(cosine_schedule(step, steps, learning_rate, warmup=5))
            losses.append(float(loss.data))
    return losses


def qat_recovery(
    model: CausalLM,
    train_tokens: np.ndarray,
    eval_sequences: np.ndarray,
    combination: PrecisionCombination,
    steps: int = 100,
    learning_rate: float = 3e-4,
    rounding: str = "truncate",
    seed: int = 0,
    batch_size: int = 8,
    seq_len: int = 64,
) -> QatResult:
    """Measure PTQ damage and QAT recovery for one combination.

    Evaluates FP perplexity, quantized-PTQ perplexity, fine-tunes under
    STE quantization, then re-evaluates quantized perplexity.  The
    model is modified in place (callers wanting to keep the original
    should deep-copy or reload from the zoo cache).
    """
    quantizer = anda_quantizer(combination, rounding=rounding)

    ppl_fp = evaluate_perplexity(model, eval_sequences)
    model.set_quantizer(quantizer)
    ppl_ptq = evaluate_perplexity(model, eval_sequences)
    model.set_quantizer(None)

    losses = fine_tune(
        model,
        train_tokens,
        combination,
        steps=steps,
        batch_size=batch_size,
        seq_len=seq_len,
        learning_rate=learning_rate,
        rounding=rounding,
        seed=seed,
    )

    model.set_quantizer(quantizer)
    ppl_qat = evaluate_perplexity(model, eval_sequences)
    model.set_quantizer(None)

    return QatResult(
        combination=combination,
        ppl_fp=ppl_fp,
        ppl_ptq=ppl_ptq,
        ppl_qat=ppl_qat,
        losses=losses,
    )
