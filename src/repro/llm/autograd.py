"""Minimal reverse-mode automatic differentiation over numpy arrays.

The LLM substrate needs gradients to *train* the scaled-down model zoo
from scratch (the paper evaluates pre-trained checkpoints; with no
PyTorch/HuggingFace available we must produce our own trained weights).
This engine supports exactly the operations a Transformer language model
requires — matmul, broadcast arithmetic, reductions, reshape/transpose,
gather, slicing/concatenation (for rotary embeddings), the nonlinear
activations, and a fused softmax cross-entropy — and nothing more.

Design notes
------------
* ``Tensor`` wraps a float32 ``numpy`` array plus an optional backward
  closure; graphs are built only while :func:`is_grad_enabled` is true,
  so inference inside :class:`no_grad` has zero tape overhead.
* Gradients broadcast like the forward ops; :func:`_unbroadcast` sums
  gradient contributions back to the parent's shape.
* ``backward()`` runs a depth-first topological sort; each tensor's
  ``grad`` accumulates, so shared sub-expressions are handled correctly.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ModelError

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Whether new operations record backward closures."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the context (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce a broadcast gradient back to ``shape``."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """A node of the autodiff graph wrapping a float32 numpy array."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents = parents
        self._backward = backward

    # -- graph bookkeeping --------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        tracked = tuple(p for p in parents if p.requires_grad)
        if _GRAD_ENABLED and tracked:
            return Tensor(data, requires_grad=True, parents=tracked, backward=backward)
        return Tensor(data)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (defaults to d(self)/d(self)=1)."""
        if not self.requires_grad:
            raise ModelError("backward() called on a tensor without gradients")
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        if grad is None:
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float32)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add a gradient contribution (creating the buffer on first use)."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    # -- shape helpers --------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad.reshape(original))

        return Tensor._make(out, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad.transpose(inverse))

        return Tensor._make(out, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out = self.data[key]
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(shape, dtype=np.float32)
            np.add.at(full, key, grad)
            self.accumulate_grad(full)

        return Tensor._make(out, (self,), backward)

    # -- arithmetic ------------------------------------------------------

    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other.accumulate_grad(_unbroadcast(grad, other.data.shape))

        return Tensor._make(out, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = -self.data

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(-grad)

        return Tensor._make(out, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other.accumulate_grad(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(out, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ModelError("Tensor ** only supports scalar exponents")
        out = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                ga = grad @ other.data.swapaxes(-1, -2)
                self.accumulate_grad(_unbroadcast(ga, self.data.shape))
            if other.requires_grad:
                gb = self.data.swapaxes(-1, -2) @ grad
                other.accumulate_grad(_unbroadcast(gb, other.data.shape))

        return Tensor._make(out, (self, other), backward)

    # -- reductions ------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self.accumulate_grad(np.broadcast_to(g, shape).astype(np.float32))

        return Tensor._make(out, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- nonlinearities ---------------------------------------------------

    def exp(self) -> "Tensor":
        out = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * out)

        return Tensor._make(out, (self,), backward)

    def log(self) -> "Tensor":
        out = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad / self.data)

        return Tensor._make(out, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * (1.0 - out * out))

        return Tensor._make(out, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * out * (1.0 - out))

        return Tensor._make(out, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * mask)

        return Tensor._make(out, (self,), backward)

    def silu(self) -> "Tensor":
        """x * sigmoid(x), the SwiGLU gate nonlinearity."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out = self.data * sig

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * sig * (1.0 + self.data * (1.0 - sig)))

        return Tensor._make(out, (self,), backward)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (used by rotary embeddings)."""
    tensors = list(tensors)
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor.accumulate_grad(grad[tuple(index)])

    return Tensor._make(out, tuple(tensors), backward)


def embedding_lookup(table: Tensor, token_ids: np.ndarray) -> Tensor:
    """Gather rows of an embedding table by integer token ids."""
    ids = np.asarray(token_ids)
    out = table.data[ids]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(table.data)
        np.add.at(full, ids, grad)
        table.accumulate_grad(full)

    return Tensor._make(out, (table,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out).sum(axis=axis, keepdims=True)
        x.accumulate_grad(out * (grad - dot))

    return Tensor._make(out, (x,), backward)


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean token-level cross entropy with fused, stable backward.

    Args:
        logits: shape ``(..., vocab)``.
        targets: integer array matching the leading shape of ``logits``.

    Returns:
        Scalar loss tensor (mean negative log likelihood in nats).
    """
    targets = np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
    flat_targets = targets.reshape(-1)
    if flat_targets.shape[0] != flat_logits.shape[0]:
        raise ModelError(
            f"targets shape {targets.shape} incompatible with logits "
            f"shape {logits.data.shape}"
        )
    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1))
    nll = logsumexp - shifted[np.arange(flat_targets.size), flat_targets]
    loss = np.float32(nll.mean())
    n = flat_targets.size

    def backward(grad: np.ndarray) -> None:
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        probs[np.arange(n), flat_targets] -= 1.0
        probs *= float(grad) / n
        logits.accumulate_grad(probs.reshape(logits.data.shape))

    return Tensor._make(np.asarray(loss), (logits,), backward)


def token_log_likelihoods(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-token negative log likelihoods (plain numpy, for perplexity)."""
    flat_logits = logits.reshape(-1, logits.shape[-1]).astype(np.float64)
    flat_targets = np.asarray(targets).reshape(-1)
    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1))
    return logsumexp - shifted[np.arange(flat_targets.size), flat_targets]
