"""Activation tap points for the four FP-INT GeMM tensor types.

Every Transformer block in this substrate routes the activations that
feed an FP-INT GeMM (``A_qkv``, ``A_o``, ``A_u``, ``A_d`` of Fig. 3)
through a shared :class:`ActivationTap` before the matmul.  The tap can

* *quantize* — substitute the activation with its fake-quantized value
  (how every BFP/Anda scheme is evaluated, inference only), and/or
* *record* — stream activation statistics to an observer (used by the
  sensitivity studies and examples).

Quantizers are keyed by :class:`repro.core.precision.TensorKind`, so a
precision combination maps directly onto a tap configuration.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from repro.core.anda import fake_quantize as anda_fake_quantize
from repro.core.precision import PrecisionCombination, TensorKind
from repro.errors import ModelError
from repro.llm import autograd
from repro.llm.autograd import Tensor

#: A quantizer maps (kind, activation ndarray) -> quantized ndarray.
Quantizer = Callable[[TensorKind, np.ndarray], np.ndarray]

#: A recorder observes (kind, activation ndarray); return value ignored.
Recorder = Callable[[TensorKind, np.ndarray], None]


class ActivationTap:
    """Mutable hook state shared by all blocks of one model."""

    def __init__(self) -> None:
        self.quantizer: Quantizer | None = None
        self.recorder: Recorder | None = None
        self.straight_through = False

    def apply(self, kind: TensorKind, activation: Tensor) -> Tensor:
        """Route one activation tensor through the tap.

        With ``straight_through`` set, quantization under an active
        gradient tape becomes a straight-through estimator: the forward
        value is the quantized activation, the backward pass copies the
        gradient unchanged to the full-precision input (the QAT
        extension of Sec. VI, :mod:`repro.llm.qat`).

        Raises:
            ModelError: if a quantizer is active while gradients are
                being recorded and ``straight_through`` is off — plain
                fake quantization is an inference-time substitution,
                not a differentiable op.
        """
        if self.recorder is not None:
            self.recorder(kind, activation.data)
        if self.quantizer is None:
            return activation
        if autograd.is_grad_enabled() and activation.requires_grad:
            if not self.straight_through:
                raise ModelError(
                    "activation quantization is inference-only; wrap the "
                    "forward pass in autograd.no_grad() or enable "
                    "straight_through for QAT"
                )
            quantized = self.quantizer(kind, activation.data)

            def backward(grad: np.ndarray) -> None:
                activation.accumulate_grad(grad)

            return Tensor._make(quantized, (activation,), backward)
        return Tensor(self.quantizer(kind, activation.data))

    def clear(self) -> None:
        self.quantizer = None
        self.recorder = None
        self.straight_through = False


def anda_quantizer(
    combination: PrecisionCombination, rounding: str = "truncate"
) -> Quantizer:
    """Quantizer applying per-tensor-type Anda mantissa lengths.

    The returned callable reshapes arbitrary ``(..., channels)``
    activations to 2-D, fake-quantizes through the Anda format (group
    size 64 along channels) and restores the shape.
    """
    combination.validate()

    def quantize(kind: TensorKind, activation: np.ndarray) -> np.ndarray:
        bits = combination[kind]
        flat = activation.reshape(-1, activation.shape[-1])
        return anda_fake_quantize(flat, bits, rounding=rounding).reshape(
            activation.shape
        )

    return quantize


def per_kind_quantizer(
    quantizers: Mapping[TensorKind, Callable[[np.ndarray], np.ndarray]],
) -> Quantizer:
    """Combine per-kind array transforms into one tap quantizer.

    Kinds absent from the mapping pass through unchanged — this is how
    the module-sensitivity study (Fig. 7) quantizes a single tensor type
    while leaving the others at full precision.
    """

    def quantize(kind: TensorKind, activation: np.ndarray) -> np.ndarray:
        transform = quantizers.get(kind)
        return activation if transform is None else transform(activation)

    return quantize


class ActivationStatsRecorder:
    """Streaming per-kind activation statistics (max |x|, RMS, count)."""

    def __init__(self) -> None:
        self.max_abs: dict[TensorKind, float] = {k: 0.0 for k in TensorKind}
        self.sum_sq: dict[TensorKind, float] = {k: 0.0 for k in TensorKind}
        self.count: dict[TensorKind, int] = {k: 0 for k in TensorKind}

    def __call__(self, kind: TensorKind, activation: np.ndarray) -> None:
        self.max_abs[kind] = max(self.max_abs[kind], float(np.abs(activation).max()))
        self.sum_sq[kind] += float((activation.astype(np.float64) ** 2).sum())
        self.count[kind] += activation.size

    def rms(self, kind: TensorKind) -> float:
        if self.count[kind] == 0:
            return 0.0
        return float(np.sqrt(self.sum_sq[kind] / self.count[kind]))
