"""Anda-format KV-cache compression (the Sec. VI synergy, implemented).

The paper keeps the KV cache in FP16 and notes that Anda "could
synergize with KV cache optimizations" as future work.  This module
implements that extension on the LLM substrate: cached keys and values
are stored through the Anda format (group size 64 along the head
dimension... grouped along the hidden axis), trading mantissa bits for
cache footprint exactly like the activation path does.

Because keys/values are written once and read at every subsequent
decode step, the compression multiplies through the decode-phase memory
traffic — the regime :mod:`repro.hw.roofline` shows is bandwidth-bound.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.anda import fake_quantize_batch
from repro.errors import ModelError
from repro.llm.attention import KVCache
from repro.llm.transformer import CausalLM


def validate_kv_mantissa_bits(mantissa_bits: int) -> None:
    """Reject out-of-range Anda KV mantissa lengths."""
    if not 1 <= mantissa_bits <= 16:
        raise ModelError(
            f"KV mantissa bits must be in [1, 16], got {mantissa_bits}"
        )


def anda_kv_bits_per_element(mantissa_bits: int) -> float:
    """Stored bits per Anda-cached element: sign + mantissa + shared exp."""
    validate_kv_mantissa_bits(mantissa_bits)
    return 1 + mantissa_bits + 8 / 64


def _fp16_factory(model: CausalLM, mantissa_bits: int) -> Callable[[], list[KVCache]]:
    return model.new_cache


def _fp16_bits(mantissa_bits: int) -> float:
    return 16.0


def _fp16_codec(mantissa_bits: int) -> KVCache:
    return KVCache()


def _anda_factory(model: CausalLM, mantissa_bits: int) -> Callable[[], list[KVCache]]:
    validate_kv_mantissa_bits(mantissa_bits)  # fail eagerly, not mid-step
    return lambda: quantized_cache_factory(model, mantissa_bits)


def _anda_bits(mantissa_bits: int) -> float:
    return anda_kv_bits_per_element(mantissa_bits)


def _anda_codec(mantissa_bits: int) -> KVCache:
    return AndaKVCache(mantissa_bits=mantissa_bits)


#: Single dispatch table: mode -> (cache factory builder, bits-per-element,
#: block codec).  Registering a new KV mode here is the only edit needed
#: for make_cache_factory, kv_bits_per_element, make_kv_codec, and
#: EngineConfig validation.
_KV_MODE_REGISTRY: dict[str, tuple[Callable, Callable, Callable]] = {
    "fp16": (_fp16_factory, _fp16_bits, _fp16_codec),
    "anda": (_anda_factory, _anda_bits, _anda_codec),
}

#: KV-cache modes the serving engine understands.
KV_MODES = tuple(_KV_MODE_REGISTRY)


def _lookup_mode(mode: str) -> tuple[Callable, Callable, Callable]:
    try:
        return _KV_MODE_REGISTRY[mode]
    except KeyError:
        raise ModelError(
            f"unknown KV mode {mode!r}; known: {', '.join(KV_MODES)}"
        ) from None


class AndaKVCache(KVCache):
    """KV cache whose entries round-trip through the Anda format.

    Args:
        mantissa_bits: Anda mantissa length for cached keys/values.
    """

    __slots__ = ("mantissa_bits", "_key")

    def __init__(self, mantissa_bits: int = 8) -> None:
        super().__init__()
        validate_kv_mantissa_bits(mantissa_bits)
        self.mantissa_bits = mantissa_bits
        # Built once: the hot decode loop asks for the key per append.
        self._key = ("anda", mantissa_bits)

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        """Round-trip K/V through the Anda format (row-local, so the
        batched decode path may apply it across a whole batch at once)."""
        return fake_quantize_batch(tensor, self.mantissa_bits)

    def compression_key(self) -> tuple:
        return self._key

    def storage_bits_per_element(self) -> float:
        """Cache footprint per element vs FP16's 16 bits."""
        return anda_kv_bits_per_element(self.mantissa_bits)


def quantized_cache_factory(model: CausalLM, mantissa_bits: int):
    """Build per-layer Anda KV caches for ``model.forward_step``.

    Example::

        caches = quantized_cache_factory(model, mantissa_bits=8)
        logits = model.forward_step(prompt, caches)
    """
    return [AndaKVCache(mantissa_bits=mantissa_bits) for _ in model.blocks]


def kv_compression_ratio(mantissa_bits: int) -> float:
    """FP16 cache bits over Anda cache bits per element."""
    cache = AndaKVCache(mantissa_bits=mantissa_bits)
    return 16.0 / cache.storage_bits_per_element()


def make_cache_factory(
    model: CausalLM, mode: str = "fp16", mantissa_bits: int = 8
) -> Callable[[], list[KVCache]]:
    """Per-request cache builder for a KV mode (engine plumbing).

    Returns a zero-argument callable producing fresh per-layer caches:
    plain FP16 for ``"fp16"``, Anda-compressed for ``"anda"``.  The
    serving engine calls it once per admitted request, and
    :func:`repro.llm.generation.generate` accepts it directly as its
    ``cache_factory`` so sequential references use the identical cache
    path.  Raises :class:`~repro.errors.ModelError` for unknown modes
    or out-of-range mantissa lengths.
    """
    factory_builder, _, _ = _lookup_mode(mode)
    return factory_builder(model, mantissa_bits)


def kv_bits_per_element(mode: str = "fp16", mantissa_bits: int = 8) -> float:
    """Stored bits per cached K/V element for a KV mode (for traffic).

    Raises :class:`~repro.errors.ModelError` for unknown modes or
    out-of-range mantissa lengths, which makes it double as the
    engine's construct-time validation of its KV configuration.
    """
    _, bits_fn, _ = _lookup_mode(mode)
    return bits_fn(mantissa_bits)


def make_kv_codec(mode: str = "fp16", mantissa_bits: int = 8) -> KVCache:
    """Write-side codec for the paged KV pool.

    Returns an *unpaged* cache instance of the mode's class; the pool's
    block-backed caches delegate ``compress`` / ``compression_key`` to
    it, so paged storage round-trips bytes through exactly the transform
    the unpaged path applies.
    """
    _, _, codec_builder = _lookup_mode(mode)
    return codec_builder(mantissa_bits)
