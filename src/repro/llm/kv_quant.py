"""Anda-format KV-cache compression (the Sec. VI synergy, implemented).

The paper keeps the KV cache in FP16 and notes that Anda "could
synergize with KV cache optimizations" as future work.  This module
implements that extension on the LLM substrate: cached keys and values
are stored through the Anda format (group size 64 along the head
dimension... grouped along the hidden axis), trading mantissa bits for
cache footprint exactly like the activation path does.

Because keys/values are written once and read at every subsequent
decode step, the compression multiplies through the decode-phase memory
traffic — the regime :mod:`repro.hw.roofline` shows is bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.anda import fake_quantize_batch
from repro.errors import ModelError
from repro.llm.attention import KVCache
from repro.llm.transformer import CausalLM


def _fp16_factory(model: CausalLM, mantissa_bits: int) -> Callable[[], list[KVCache]]:
    return model.new_cache


def _fp16_bits(mantissa_bits: int) -> float:
    return 16.0


def _anda_factory(model: CausalLM, mantissa_bits: int) -> Callable[[], list[KVCache]]:
    AndaKVCache(mantissa_bits=mantissa_bits)  # validate eagerly
    return lambda: quantized_cache_factory(model, mantissa_bits)


def _anda_bits(mantissa_bits: int) -> float:
    return AndaKVCache(mantissa_bits=mantissa_bits).storage_bits_per_element()


#: Single dispatch table: mode -> (cache factory builder, bits-per-element).
#: Registering a new KV mode here is the only edit needed for
#: make_cache_factory, kv_bits_per_element, and EngineConfig validation.
_KV_MODE_REGISTRY: dict[str, tuple[Callable, Callable]] = {
    "fp16": (_fp16_factory, _fp16_bits),
    "anda": (_anda_factory, _anda_bits),
}

#: KV-cache modes the serving engine understands.
KV_MODES = tuple(_KV_MODE_REGISTRY)


def _lookup_mode(mode: str) -> tuple[Callable, Callable]:
    try:
        return _KV_MODE_REGISTRY[mode]
    except KeyError:
        raise ModelError(
            f"unknown KV mode {mode!r}; known: {', '.join(KV_MODES)}"
        ) from None


@dataclass
class AndaKVCache(KVCache):
    """KV cache whose entries round-trip through the Anda format.

    Args:
        mantissa_bits: Anda mantissa length for cached keys/values.
    """

    mantissa_bits: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.mantissa_bits <= 16:
            raise ModelError(
                f"KV mantissa bits must be in [1, 16], got {self.mantissa_bits}"
            )

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        """Round-trip K/V through the Anda format (row-local, so the
        batched decode path may apply it across a whole batch at once)."""
        return fake_quantize_batch(tensor, self.mantissa_bits)

    def compression_key(self) -> tuple:
        return ("anda", self.mantissa_bits)

    def storage_bits_per_element(self) -> float:
        """Cache footprint per element vs FP16's 16 bits."""
        return 1 + self.mantissa_bits + 8 / 64


def quantized_cache_factory(model: CausalLM, mantissa_bits: int):
    """Build per-layer Anda KV caches for ``model.forward_step``.

    Example::

        caches = quantized_cache_factory(model, mantissa_bits=8)
        logits = model.forward_step(prompt, caches)
    """
    return [AndaKVCache(mantissa_bits=mantissa_bits) for _ in model.blocks]


def kv_compression_ratio(mantissa_bits: int) -> float:
    """FP16 cache bits over Anda cache bits per element."""
    cache = AndaKVCache(mantissa_bits=mantissa_bits)
    return 16.0 / cache.storage_bits_per_element()


def make_cache_factory(
    model: CausalLM, mode: str = "fp16", mantissa_bits: int = 8
) -> Callable[[], list[KVCache]]:
    """Per-request cache builder for a KV mode (engine plumbing).

    Returns a zero-argument callable producing fresh per-layer caches:
    plain FP16 for ``"fp16"``, Anda-compressed for ``"anda"``.  The
    serving engine calls it once per admitted request, and
    :func:`repro.llm.generation.generate` accepts it directly as its
    ``cache_factory`` so sequential references use the identical cache
    path.  Raises :class:`~repro.errors.ModelError` for unknown modes
    or out-of-range mantissa lengths.
    """
    factory_builder, _ = _lookup_mode(mode)
    return factory_builder(model, mantissa_bits)


def kv_bits_per_element(mode: str = "fp16", mantissa_bits: int = 8) -> float:
    """Stored bits per cached K/V element for a KV mode (for traffic).

    Raises :class:`~repro.errors.ModelError` for unknown modes or
    out-of-range mantissa lengths, which makes it double as the
    engine's construct-time validation of its KV configuration.
    """
    _, bits_fn = _lookup_mode(mode)
    return bits_fn(mantissa_bits)
