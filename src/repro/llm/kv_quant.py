"""Anda-format KV-cache compression (the Sec. VI synergy, implemented).

The paper keeps the KV cache in FP16 and notes that Anda "could
synergize with KV cache optimizations" as future work.  This module
implements that extension on the LLM substrate: cached keys and values
are stored through the Anda format (group size 64 along the head
dimension... grouped along the hidden axis), trading mantissa bits for
cache footprint exactly like the activation path does.

Because keys/values are written once and read at every subsequent
decode step, the compression multiplies through the decode-phase memory
traffic — the regime :mod:`repro.hw.roofline` shows is bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from types import ModuleType

import numpy as np

from repro.core.anda import fake_quantize_batch
from repro.core.bfp import BfpConfig
from repro.core.bfp import fake_quantize as bfp_fake_quantize
from repro.core.precision import PrecisionCombination, TensorKind
from repro.errors import ModelError
from repro.llm.attention import KVCache
from repro.llm.transformer import CausalLM


def _mx_module() -> ModuleType:
    # Imported lazily: ``repro.quant.__init__`` pulls in report paths
    # that import back through ``repro.hw`` into ``repro.llm``, so a
    # module-level import here is circular when ``repro.hw`` (which
    # re-exports this module's registry through ``repro.llm``) loads
    # first.  ``sys.modules`` caching makes repeat calls free.
    from repro.quant import mx

    return mx


def validate_kv_mantissa_bits(mantissa_bits: int) -> None:
    """Reject out-of-range Anda KV mantissa lengths."""
    if not 1 <= mantissa_bits <= 16:
        raise ModelError(
            f"KV mantissa bits must be in [1, 16], got {mantissa_bits}"
        )


def anda_kv_bits_per_element(mantissa_bits: int) -> float:
    """Stored bits per Anda-cached element: sign + mantissa + shared exp."""
    validate_kv_mantissa_bits(mantissa_bits)
    return 1 + mantissa_bits + 8 / 64


def _fp16_factory(model: CausalLM, mantissa_bits: int) -> Callable[[], list[KVCache]]:
    return model.new_cache


def _fp16_bits(mantissa_bits: int) -> float:
    return 16.0


def _fp16_codec(mantissa_bits: int) -> KVCache:
    return KVCache()


def _anda_factory(model: CausalLM, mantissa_bits: int) -> Callable[[], list[KVCache]]:
    validate_kv_mantissa_bits(mantissa_bits)  # fail eagerly, not mid-step
    return lambda: quantized_cache_factory(model, mantissa_bits)


def _anda_bits(mantissa_bits: int) -> float:
    return anda_kv_bits_per_element(mantissa_bits)


def _anda_codec(mantissa_bits: int) -> KVCache:
    return AndaKVCache(mantissa_bits=mantissa_bits)


def _uniform_factory(codec_builder: Callable) -> Callable:
    def build(model: CausalLM, mantissa_bits: int) -> Callable[[], list[KVCache]]:
        codec_builder(mantissa_bits)  # fail eagerly, not mid-step
        return lambda: [codec_builder(mantissa_bits) for _ in model.blocks]

    return build


def bfp_kv_bits_per_element(mantissa_bits: int) -> float:
    """Stored bits per BFP-cached element (element layout, group 64)."""
    validate_kv_mantissa_bits(mantissa_bits)
    return 1 + mantissa_bits + 8 / 64


def _bfp_codec(mantissa_bits: int) -> KVCache:
    return BfpKVCache(mantissa_bits=mantissa_bits)


def mx_kv_bits_per_element(mantissa_bits: int) -> float:
    """Stored bits per MX-cached element: sign + mantissa + both exponent
    levels (coarse per 64-group, microexponent per subgroup), amortized."""
    validate_kv_mantissa_bits(mantissa_bits)
    config = _mx_module().MxConfig(mantissa_bits=mantissa_bits)
    return (
        1
        + mantissa_bits
        + 8 / config.group_size
        + config.micro_bits / config.subgroup_size
    )


def _mx_codec(mantissa_bits: int) -> KVCache:
    return MxKVCache(mantissa_bits=mantissa_bits)


#: Single dispatch table: mode -> (cache factory builder, bits-per-element,
#: block codec).  Registering a new KV mode here is the only edit needed
#: for make_cache_factory, kv_bits_per_element, make_kv_codec,
#: :class:`KVFormat` validation, and EngineConfig validation.
_KV_MODE_REGISTRY: dict[str, tuple[Callable, Callable, Callable]] = {
    "fp16": (_fp16_factory, _fp16_bits, _fp16_codec),
    "anda": (_anda_factory, _anda_bits, _anda_codec),
    "bfp": (_uniform_factory(_bfp_codec), bfp_kv_bits_per_element, _bfp_codec),
    "mx": (_uniform_factory(_mx_codec), mx_kv_bits_per_element, _mx_codec),
}

#: KV-cache modes the serving engine understands.
KV_MODES = tuple(_KV_MODE_REGISTRY)


def _lookup_mode(mode: str) -> tuple[Callable, Callable, Callable]:
    try:
        return _KV_MODE_REGISTRY[mode]
    except KeyError:
        raise ModelError(
            f"unknown KV mode {mode!r}; known: {', '.join(KV_MODES)}"
        ) from None


class AndaKVCache(KVCache):
    """KV cache whose entries round-trip through the Anda format.

    Args:
        mantissa_bits: Anda mantissa length for cached keys/values.
    """

    __slots__ = ("mantissa_bits", "_key")

    def __init__(self, mantissa_bits: int = 8) -> None:
        super().__init__()
        validate_kv_mantissa_bits(mantissa_bits)
        self.mantissa_bits = mantissa_bits
        # Built once: the hot decode loop asks for the key per append.
        self._key = ("anda", mantissa_bits)

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        """Round-trip K/V through the Anda format (row-local, so the
        batched decode path may apply it across a whole batch at once)."""
        return fake_quantize_batch(tensor, self.mantissa_bits)

    def compression_key(self) -> tuple:
        return self._key

    def storage_bits_per_element(self) -> float:
        """Cache footprint per element vs FP16's 16 bits."""
        return anda_kv_bits_per_element(self.mantissa_bits)


def quantized_cache_factory(model: CausalLM, mantissa_bits: int) -> list[KVCache]:
    """Build per-layer Anda KV caches for ``model.forward_step``.

    Example::

        caches = quantized_cache_factory(model, mantissa_bits=8)
        logits = model.forward_step(prompt, caches)
    """
    return [AndaKVCache(mantissa_bits=mantissa_bits) for _ in model.blocks]


class BfpKVCache(KVCache):
    """KV cache round-tripping entries through plain BFP (group 64,
    nearest rounding) — the paper's baseline grouped format without the
    Anda bit-plane truncation convention."""

    __slots__ = ("mantissa_bits", "_config", "_key")

    def __init__(self, mantissa_bits: int = 8) -> None:
        super().__init__()
        validate_kv_mantissa_bits(mantissa_bits)
        self.mantissa_bits = mantissa_bits
        self._config = BfpConfig(
            mantissa_bits=mantissa_bits, group_size=64, rounding="nearest"
        )
        self._key = ("bfp", mantissa_bits)

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        tensor = np.asarray(tensor)
        flat = tensor.reshape(-1, tensor.shape[-1])
        return bfp_fake_quantize(flat, self._config).reshape(tensor.shape)

    def compression_key(self) -> tuple:
        return self._key

    def storage_bits_per_element(self) -> float:
        return bfp_kv_bits_per_element(self.mantissa_bits)


class MxKVCache(KVCache):
    """KV cache round-tripping entries through the two-level
    shared-microexponent (MX) format at its default geometry."""

    __slots__ = ("mantissa_bits", "_config", "_key")

    def __init__(self, mantissa_bits: int = 4) -> None:
        super().__init__()
        validate_kv_mantissa_bits(mantissa_bits)
        self.mantissa_bits = mantissa_bits
        self._config = _mx_module().MxConfig(mantissa_bits=mantissa_bits)
        self._key = ("mx", mantissa_bits)

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        tensor = np.asarray(tensor)
        flat = tensor.reshape(-1, tensor.shape[-1])
        return _mx_module().fake_quantize_mx(flat, self._config).reshape(tensor.shape)

    def compression_key(self) -> tuple:
        return self._key

    def storage_bits_per_element(self) -> float:
        return mx_kv_bits_per_element(self.mantissa_bits)


def kv_compression_ratio(mantissa_bits: int) -> float:
    """FP16 cache bits over Anda cache bits per element."""
    cache = AndaKVCache(mantissa_bits=mantissa_bits)
    return 16.0 / cache.storage_bits_per_element()


#: Sentinel mode naming a heterogeneous per-layer format stack.
PER_LAYER_MODE = "per_layer"


@dataclass(frozen=True)
class KVFormat:
    """First-class KV-cache format spec for the serving engine.

    A frozen value object naming how cached keys/values are stored:
    one of the registered uniform modes (``fp16``, ``anda``, ``bfp``,
    ``mx``) with a mantissa length, or a heterogeneous per-layer stack
    of uniform formats (mode :data:`PER_LAYER_MODE`).  Resolvable
    engine-wide (``EngineConfig.kv_format``), per request
    (``SamplingParams.kv_format``), and per layer
    (:meth:`KVFormat.per_layer`).

    Construct through the classmethods::

        KVFormat.fp16()
        KVFormat.anda(8)
        KVFormat.bfp(8)
        KVFormat.mx(4)
        KVFormat.per_layer([KVFormat.anda(4), KVFormat.fp16()])
        KVFormat.from_search(search_result)

    Raises :class:`~repro.errors.ModelError` for unknown modes,
    out-of-range mantissa lengths, or malformed per-layer stacks.
    """

    mode: str = "fp16"
    mantissa_bits: int = 8
    layers: tuple["KVFormat", ...] = ()

    def __post_init__(self) -> None:
        if self.mode == PER_LAYER_MODE:
            object.__setattr__(self, "layers", tuple(self.layers))
            if not self.layers:
                raise ModelError(
                    "per-layer KVFormat needs at least one layer entry"
                )
            for entry in self.layers:
                if not isinstance(entry, KVFormat) or not entry.uniform:
                    raise ModelError(
                        "per-layer KVFormat entries must be uniform "
                        f"KVFormat instances, got {entry!r}"
                    )
        else:
            if self.layers:
                raise ModelError(
                    "layers are only valid with mode "
                    f"{PER_LAYER_MODE!r}; use KVFormat.per_layer(...)"
                )
            # Validates both the mode name and the mantissa length.
            _lookup_mode(self.mode)[1](self.mantissa_bits)

    # -- constructors --------------------------------------------------

    @classmethod
    def fp16(cls) -> "KVFormat":
        """Uncompressed FP16 storage (the parity baseline)."""
        return cls(mode="fp16")

    @classmethod
    def anda(cls, mantissa_bits: int = 8) -> "KVFormat":
        """Anda truncate-mode grouped format (group 64)."""
        return cls(mode="anda", mantissa_bits=mantissa_bits)

    @classmethod
    def bfp(cls, mantissa_bits: int = 8) -> "KVFormat":
        """Plain BFP, group 64, round-to-nearest."""
        return cls(mode="bfp", mantissa_bits=mantissa_bits)

    @classmethod
    def mx(cls, mantissa_bits: int = 4) -> "KVFormat":
        """Two-level shared-microexponent format, default geometry."""
        return cls(mode="mx", mantissa_bits=mantissa_bits)

    @classmethod
    def per_layer(cls, formats: Iterable["KVFormat"]) -> "KVFormat":
        """Heterogeneous stack: one uniform format per model layer."""
        return cls(mode=PER_LAYER_MODE, layers=tuple(formats))

    @classmethod
    def from_search(cls, source: object, mode: str = "anda") -> "KVFormat":
        """Build a KV format from precision-search output.

        Accepts a :class:`~repro.core.search.SearchResult` (its
        ``best`` combination; infeasible searches raise), a bare
        :class:`~repro.core.precision.PrecisionCombination`, or a
        sequence of either — which yields a per-layer stack.  The KV
        cache stores the QKV-projection activations, so the
        combination's ``qkv`` mantissa length is the one that applies;
        ``mode`` picks which grouped format spends those bits.
        """
        best = getattr(source, "best", None)
        if best is not None:
            source = best
        if isinstance(source, PrecisionCombination):
            return cls(mode=mode, mantissa_bits=source[TensorKind.QKV])
        if hasattr(source, "feasible") and not source.feasible:
            raise ModelError(
                "precision search found no feasible combination; "
                "cannot derive a KV format from it"
            )
        if isinstance(source, Sequence) and not isinstance(source, (str, bytes)):
            return cls.per_layer(
                cls.from_search(entry, mode=mode) for entry in source
            )
        raise ModelError(
            "KVFormat.from_search expects a SearchResult, a "
            f"PrecisionCombination, or a sequence of them, got {source!r}"
        )

    # -- resolution ----------------------------------------------------

    @property
    def uniform(self) -> bool:
        """True when every layer shares one mode/mantissa pair."""
        return self.mode != PER_LAYER_MODE

    def resolve(self, layer: int) -> "KVFormat":
        """The uniform format governing one model layer."""
        if self.uniform:
            return self
        if not 0 <= layer < len(self.layers):
            raise ModelError(
                f"layer {layer} outside per-layer KVFormat of "
                f"{len(self.layers)} layers"
            )
        return self.layers[layer]

    def bits_per_element(self, n_layers: int | None = None) -> float:
        """Stored bits per cached K/V element (mean across layers)."""
        if self.uniform:
            return _lookup_mode(self.mode)[1](self.mantissa_bits)
        if n_layers is not None and n_layers != len(self.layers):
            raise ModelError(
                f"per-layer KVFormat covers {len(self.layers)} layers, "
                f"model has {n_layers}"
            )
        return float(
            np.mean([entry.bits_per_element() for entry in self.layers])
        )

    def signature(self, n_layers: int) -> tuple:
        """Per-layer compression keys — the byte-compatibility identity.

        Two sequences may share prefix-cache blocks only when their
        signatures match: equal signatures mean every layer's stored
        bytes went through the identical transform.
        """
        return tuple(
            self.resolve(layer).codec().compression_key()
            for layer in range(self._check_layers(n_layers))
        )

    def codec(self) -> KVCache:
        """Write-side codec instance for a uniform format."""
        if not self.uniform:
            raise ModelError(
                "per-layer KVFormat has no single codec; use .codecs(n_layers)"
            )
        return _lookup_mode(self.mode)[2](self.mantissa_bits)

    def codecs(self, n_layers: int) -> list[KVCache]:
        """One write-side codec per model layer."""
        return [
            self.resolve(layer).codec()
            for layer in range(self._check_layers(n_layers))
        ]

    def cache_factory(self, model: CausalLM) -> Callable[[], list[KVCache]]:
        """Zero-argument per-request cache builder for ``model``."""
        if self.uniform:
            factory_builder, _, _ = _lookup_mode(self.mode)
            return factory_builder(model, self.mantissa_bits)
        n_layers = self._check_layers(len(model.blocks))
        return lambda: self.codecs(n_layers)

    @property
    def label(self) -> str:
        """Compact human/telemetry label (``fp16``, ``anda8``, ...)."""
        if self.uniform:
            if self.mode == "fp16":
                return "fp16"
            return f"{self.mode}{self.mantissa_bits}"
        labels = [entry.label for entry in self.layers]
        if len(set(labels)) == 1:
            return f"per_layer({labels[0]}x{len(labels)})"
        return "per_layer(" + ",".join(labels) + ")"

    def _check_layers(self, n_layers: int) -> int:
        if not self.uniform and n_layers != len(self.layers):
            raise ModelError(
                f"per-layer KVFormat covers {len(self.layers)} layers, "
                f"model has {n_layers}"
            )
        return n_layers


def make_cache_factory(
    model: CausalLM,
    mode: "str | KVFormat" = "fp16",
    mantissa_bits: int = 8,
) -> Callable[[], list[KVCache]]:
    """Per-request cache builder for a KV mode (engine plumbing).

    Returns a zero-argument callable producing fresh per-layer caches:
    plain FP16 for ``"fp16"``, Anda-compressed for ``"anda"``, and so
    on through the registry; a :class:`KVFormat` (including per-layer
    stacks) may be passed in place of the ``(mode, mantissa_bits)``
    pair.  The serving engine calls it once per admitted request, and
    :func:`repro.llm.generation.generate` accepts it directly as its
    ``cache_factory`` so sequential references use the identical cache
    path.  Raises :class:`~repro.errors.ModelError` for unknown modes
    or out-of-range mantissa lengths.
    """
    if isinstance(mode, KVFormat):
        return mode.cache_factory(model)
    factory_builder, _, _ = _lookup_mode(mode)
    return factory_builder(model, mantissa_bits)


def kv_bits_per_element(
    mode: "str | KVFormat" = "fp16", mantissa_bits: int = 8
) -> float:
    """Stored bits per cached K/V element for a KV mode (for traffic).

    Accepts a :class:`KVFormat` in place of the pair (per-layer stacks
    report their mean).  Raises :class:`~repro.errors.ModelError` for
    unknown modes or out-of-range mantissa lengths, which makes it
    double as the engine's construct-time validation of its KV
    configuration.
    """
    if isinstance(mode, KVFormat):
        return mode.bits_per_element()
    _, bits_fn, _ = _lookup_mode(mode)
    return bits_fn(mantissa_bits)


def make_kv_codec(
    mode: "str | KVFormat" = "fp16", mantissa_bits: int = 8
) -> KVCache:
    """Write-side codec for the paged KV pool.

    Returns an *unpaged* cache instance of the mode's class; the pool's
    block-backed caches delegate ``compress`` / ``compression_key`` to
    it, so paged storage round-trips bytes through exactly the transform
    the unpaged path applies.  A uniform :class:`KVFormat` may be passed
    in place of the pair; per-layer stacks raise (use
    :meth:`KVFormat.codecs`).
    """
    if isinstance(mode, KVFormat):
        return mode.codec()
    _, _, codec_builder = _lookup_mode(mode)
    return codec_builder(mantissa_bits)
