"""Anda-format KV-cache compression (the Sec. VI synergy, implemented).

The paper keeps the KV cache in FP16 and notes that Anda "could
synergize with KV cache optimizations" as future work.  This module
implements that extension on the LLM substrate: cached keys and values
are stored through the Anda format (group size 64 along the head
dimension... grouped along the hidden axis), trading mantissa bits for
cache footprint exactly like the activation path does.

Because keys/values are written once and read at every subsequent
decode step, the compression multiplies through the decode-phase memory
traffic — the regime :mod:`repro.hw.roofline` shows is bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.anda import fake_quantize
from repro.errors import ModelError
from repro.llm.attention import KVCache
from repro.llm.transformer import CausalLM


@dataclass
class AndaKVCache(KVCache):
    """KV cache whose entries round-trip through the Anda format.

    Args:
        mantissa_bits: Anda mantissa length for cached keys/values.
    """

    mantissa_bits: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.mantissa_bits <= 16:
            raise ModelError(
                f"KV mantissa bits must be in [1, 16], got {self.mantissa_bits}"
            )

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        k = self._compress(k)
        v = self._compress(v)
        return super().append(k, v)

    def _compress(self, tensor: np.ndarray) -> np.ndarray:
        flat = tensor.reshape(-1, tensor.shape[-1])
        return fake_quantize(flat, self.mantissa_bits).reshape(tensor.shape)

    def storage_bits_per_element(self) -> float:
        """Cache footprint per element vs FP16's 16 bits."""
        return 1 + self.mantissa_bits + 8 / 64


def quantized_cache_factory(model: CausalLM, mantissa_bits: int):
    """Build per-layer Anda KV caches for ``model.forward_step``.

    Example::

        caches = quantized_cache_factory(model, mantissa_bits=8)
        logits = model.forward_step(prompt, caches)
    """
    return [AndaKVCache(mantissa_bits=mantissa_bits) for _ in model.blocks]


def kv_compression_ratio(mantissa_bits: int) -> float:
    """FP16 cache bits over Anda cache bits per element."""
    cache = AndaKVCache(mantissa_bits=mantissa_bits)
    return 16.0 / cache.storage_bits_per_element()
