"""Autoregressive text generation with a KV cache.

Decoding exercises the same FP-INT GeMM tap points as prefill (the
quantizer, if installed, applies at every step), with attention keys and
values cached in FP16 as in the paper's evaluation setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.llm.tokenizer import ByteTokenizer
from repro.llm.transformer import CausalLM


@dataclass(frozen=True)
class GenerationResult:
    """Tokens produced by one decode call (prompt included)."""

    tokens: np.ndarray
    prompt_length: int

    def continuation(self) -> np.ndarray:
        return self.tokens[self.prompt_length :]


def generate(
    model: CausalLM,
    prompt_tokens: np.ndarray,
    max_new_tokens: int,
    temperature: float = 0.0,
    top_k: int = 20,
    seed: int = 0,
) -> GenerationResult:
    """Greedy (``temperature == 0``) or top-k sampled decoding.

    Args:
        model: a trained causal LM.
        prompt_tokens: 1-D prompt token ids.
        max_new_tokens: continuation length.
        temperature: 0 for greedy, else softmax temperature.
        top_k: sample from the k most likely tokens when sampling.
        seed: sampling seed.
    """
    prompt = np.asarray(prompt_tokens).reshape(1, -1)
    if prompt.shape[1] < 1:
        raise ModelError("prompt must contain at least one token")
    if prompt.shape[1] + max_new_tokens > model.config.max_seq_len:
        raise ModelError(
            f"prompt + continuation ({prompt.shape[1]} + {max_new_tokens}) "
            f"exceeds max_seq_len {model.config.max_seq_len}"
        )
    rng = np.random.default_rng(seed)
    caches = model.new_cache()
    logits = model.forward_step(prompt, caches)[:, -1, :]

    produced = [prompt[0]]
    for _ in range(max_new_tokens):
        if temperature <= 0.0:
            next_token = int(np.argmax(logits[0]))
        else:
            scaled = logits[0].astype(np.float64) / temperature
            top = np.argsort(scaled)[-top_k:]
            probs = np.exp(scaled[top] - scaled[top].max())
            probs /= probs.sum()
            next_token = int(rng.choice(top, p=probs))
        produced.append(np.array([next_token]))
        logits = model.forward_step(np.array([[next_token]]), caches)[:, -1, :]
    return GenerationResult(
        tokens=np.concatenate(produced), prompt_length=prompt.shape[1]
    )


def generate_text(
    model: CausalLM,
    prompt: str,
    max_new_tokens: int = 64,
    temperature: float = 0.0,
    seed: int = 0,
) -> str:
    """String-in / string-out convenience wrapper around :func:`generate`."""
    tokenizer = ByteTokenizer()
    result = generate(
        model,
        tokenizer.encode(prompt),
        max_new_tokens,
        temperature=temperature,
        seed=seed,
    )
    return tokenizer.decode(result.tokens)
