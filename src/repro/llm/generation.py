"""Autoregressive text generation with a KV cache.

Decoding exercises the same FP-INT GeMM tap points as prefill (the
quantizer, if installed, applies at every step), with attention keys and
values cached in FP16 as in the paper's evaluation setup.

The decoding recipe is a per-request :class:`repro.serve.SamplingParams`
(temperature, top-k, nucleus top-p, stop tokens, seed).  :func:`generate`
accepts either one directly (``params=``) or the equivalent scalar
kwargs; the serving engine's batched decode uses the same
:func:`select_next_token` on the same recipe, which is what makes the
two paths token-bitwise identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ModelError
from repro.llm.attention import KVCache
from repro.llm.tokenizer import ByteTokenizer
from repro.llm.transformer import CausalLM

if TYPE_CHECKING:  # pragma: no cover - serve imports llm, not vice versa
    from repro.serve.params import SamplingParams

#: Builds fresh per-layer caches for one request (e.g. FP16 or Anda KV).
CacheFactory = Callable[[], "list[KVCache]"]


def _sampling_params(
    params: "SamplingParams | None",
    max_new_tokens: int | None,
    temperature: float,
    top_k: int,
    seed: int,
) -> "SamplingParams":
    """Resolve an explicit ``SamplingParams`` or build one from kwargs."""
    # Function-level import: repro.serve imports this module at package
    # init, so the reverse edge must stay lazy to avoid a cycle.
    from repro.serve.params import SamplingParams

    if params is not None:
        return params
    if max_new_tokens is None:
        raise ModelError("either params or max_new_tokens must be given")
    return SamplingParams(
        max_new_tokens=max_new_tokens,
        temperature=temperature,
        top_k=top_k,
        seed=seed,
    )


@dataclass(frozen=True)
class GenerationResult:
    """Tokens produced by one decode call (prompt included)."""

    tokens: np.ndarray
    prompt_length: int
    #: Why decoding ended: ``"length"`` (hit ``max_new_tokens``) or
    #: ``"stop"`` (emitted a ``stop_token_ids`` member).
    finish_reason: str = "length"

    def continuation(self) -> np.ndarray:
        return self.tokens[self.prompt_length :]


def select_next_token(
    logits: np.ndarray,
    temperature: float,
    top_k: int,
    rng: np.random.Generator,
    top_p: float = 1.0,
) -> int:
    """Pick the next token from one vocab-sized logit row.

    Greedy argmax at ``temperature <= 0``, else top-k softmax sampling
    with optional nucleus (top-p) truncation.  Shared by
    :func:`generate` and the serving engine so both paths make
    bit-identical choices from identical logits and RNG state —
    ``top_p=1.0`` takes the pre-nucleus code path verbatim (same ops,
    same RNG consumption), which is what keeps the parity suite exact.
    """
    if temperature <= 0.0:
        return int(np.argmax(logits))
    if top_k < 1:
        raise ModelError(f"top_k must be >= 1 when sampling, got {top_k}")
    scaled = logits.astype(np.float64) / temperature
    top = np.argsort(scaled)[-top_k:]
    probs = np.exp(scaled[top] - scaled[top].max())
    probs /= probs.sum()
    if top_p < 1.0:
        # Keep the smallest high-probability set reaching top_p mass
        # (the nucleus always includes the most likely token), then
        # renormalize over it.
        order = np.argsort(probs)[::-1]
        cutoff = int(np.searchsorted(np.cumsum(probs[order]), top_p)) + 1
        keep = order[:cutoff]
        top = top[keep]
        probs = probs[keep] / probs[keep].sum()
    return int(rng.choice(top, p=probs))


def generate(
    model: CausalLM,
    prompt_tokens: np.ndarray,
    max_new_tokens: int | None = None,
    temperature: float = 0.0,
    top_k: int = 20,
    seed: int = 0,
    cache_factory: CacheFactory | None = None,
    params: "SamplingParams | None" = None,
) -> GenerationResult:
    """Greedy (``temperature == 0``) or top-k/top-p sampled decoding.

    Args:
        model: a trained causal LM.
        prompt_tokens: 1-D prompt token ids.
        max_new_tokens: continuation length (ignored when ``params`` is
            given).
        temperature: 0 for greedy, else softmax temperature.
        top_k: sample from the k most likely tokens when sampling.
        seed: sampling seed.
        cache_factory: optional builder for the per-layer KV caches
            (default FP16 via ``model.new_cache``; pass e.g.
            ``lambda: quantized_cache_factory(model, 8)`` for Anda KV).
        params: a full :class:`repro.serve.SamplingParams` recipe; when
            given it overrides the scalar decoding kwargs and adds
            nucleus ``top_p`` and early-``stop_token_ids`` support.
    """
    params = _sampling_params(params, max_new_tokens, temperature, top_k, seed)
    prompt = np.asarray(prompt_tokens).reshape(1, -1)
    if prompt.shape[1] < 1:
        raise ModelError("prompt must contain at least one token")
    if prompt.shape[1] + params.max_new_tokens > model.config.max_seq_len:
        raise ModelError(
            f"prompt + continuation ({prompt.shape[1]} + "
            f"{params.max_new_tokens}) exceeds max_seq_len "
            f"{model.config.max_seq_len}"
        )
    rng = np.random.default_rng(params.seed)
    caches = model.new_cache() if cache_factory is None else cache_factory()
    logits = model.forward_step(prompt, caches)[:, -1, :]

    produced = [prompt[0]]
    finish_reason = "length"
    for index in range(params.max_new_tokens):
        next_token = select_next_token(
            logits[0],
            params.temperature,
            params.top_k,
            rng,
            top_p=params.top_p,
        )
        produced.append(np.array([next_token]))
        if params.is_stop(next_token):
            finish_reason = "stop"
            break
        if index + 1 < params.max_new_tokens:
            logits = model.forward_step(np.array([[next_token]]), caches)[:, -1, :]
    return GenerationResult(
        tokens=np.concatenate(produced),
        prompt_length=prompt.shape[1],
        finish_reason=finish_reason,
    )


def generate_text(
    model: CausalLM,
    prompt: str,
    max_new_tokens: int = 64,
    temperature: float = 0.0,
    seed: int = 0,
    params: "SamplingParams | None" = None,
) -> str:
    """String-in / string-out convenience wrapper around :func:`generate`.

    Routed through :class:`repro.serve.SamplingParams` like every other
    front end: the scalar kwargs build one (pass ``params`` to use a
    full recipe, including ``top_p`` and ``stop_token_ids``).
    """
    params = _sampling_params(params, max_new_tokens, temperature, 20, seed)
    tokenizer = ByteTokenizer()
    result = generate(model, tokenizer.encode(prompt), params=params)
    return tokenizer.decode(result.tokens)
