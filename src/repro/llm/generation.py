"""Autoregressive text generation with a KV cache.

Decoding exercises the same FP-INT GeMM tap points as prefill (the
quantizer, if installed, applies at every step), with attention keys and
values cached in FP16 as in the paper's evaluation setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ModelError
from repro.llm.attention import KVCache
from repro.llm.tokenizer import ByteTokenizer
from repro.llm.transformer import CausalLM

#: Builds fresh per-layer caches for one request (e.g. FP16 or Anda KV).
CacheFactory = Callable[[], "list[KVCache]"]


@dataclass(frozen=True)
class GenerationResult:
    """Tokens produced by one decode call (prompt included)."""

    tokens: np.ndarray
    prompt_length: int

    def continuation(self) -> np.ndarray:
        return self.tokens[self.prompt_length :]


def select_next_token(
    logits: np.ndarray,
    temperature: float,
    top_k: int,
    rng: np.random.Generator,
) -> int:
    """Pick the next token from one vocab-sized logit row.

    Greedy argmax at ``temperature <= 0``, else top-k softmax sampling.
    Shared by :func:`generate` and the serving engine so both paths make
    bit-identical choices from identical logits and RNG state.
    """
    if temperature <= 0.0:
        return int(np.argmax(logits))
    if top_k < 1:
        raise ModelError(f"top_k must be >= 1 when sampling, got {top_k}")
    scaled = logits.astype(np.float64) / temperature
    top = np.argsort(scaled)[-top_k:]
    probs = np.exp(scaled[top] - scaled[top].max())
    probs /= probs.sum()
    return int(rng.choice(top, p=probs))


def generate(
    model: CausalLM,
    prompt_tokens: np.ndarray,
    max_new_tokens: int,
    temperature: float = 0.0,
    top_k: int = 20,
    seed: int = 0,
    cache_factory: CacheFactory | None = None,
) -> GenerationResult:
    """Greedy (``temperature == 0``) or top-k sampled decoding.

    Args:
        model: a trained causal LM.
        prompt_tokens: 1-D prompt token ids.
        max_new_tokens: continuation length.
        temperature: 0 for greedy, else softmax temperature.
        top_k: sample from the k most likely tokens when sampling.
        seed: sampling seed.
        cache_factory: optional builder for the per-layer KV caches
            (default FP16 via ``model.new_cache``; pass e.g.
            ``lambda: quantized_cache_factory(model, 8)`` for Anda KV).
    """
    prompt = np.asarray(prompt_tokens).reshape(1, -1)
    if prompt.shape[1] < 1:
        raise ModelError("prompt must contain at least one token")
    if prompt.shape[1] + max_new_tokens > model.config.max_seq_len:
        raise ModelError(
            f"prompt + continuation ({prompt.shape[1]} + {max_new_tokens}) "
            f"exceeds max_seq_len {model.config.max_seq_len}"
        )
    rng = np.random.default_rng(seed)
    caches = model.new_cache() if cache_factory is None else cache_factory()
    logits = model.forward_step(prompt, caches)[:, -1, :]

    produced = [prompt[0]]
    for index in range(max_new_tokens):
        next_token = select_next_token(logits[0], temperature, top_k, rng)
        produced.append(np.array([next_token]))
        if index + 1 < max_new_tokens:
            logits = model.forward_step(np.array([[next_token]]), caches)[:, -1, :]
    return GenerationResult(
        tokens=np.concatenate(produced), prompt_length=prompt.shape[1]
    )


def generate_text(
    model: CausalLM,
    prompt: str,
    max_new_tokens: int = 64,
    temperature: float = 0.0,
    seed: int = 0,
) -> str:
    """String-in / string-out convenience wrapper around :func:`generate`."""
    tokenizer = ByteTokenizer()
    result = generate(
        model,
        tokenizer.encode(prompt),
        max_new_tokens,
        temperature=temperature,
        seed=seed,
    )
    return tokenizer.decode(result.tokens)
