"""Perplexity evaluation and the accuracy convention of the search.

The paper scores models by perplexity (lower is better) and defines the
*relative accuracy* of a quantized configuration against the weight-only
quantized reference.  The adaptive search maximizes accuracy, so this
module maps perplexity into the "higher is better" convention via
``accuracy = reference_ppl / ppl`` (1.0 = no degradation; the 1% loss
constraint becomes ``ppl <= reference_ppl / 0.99``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.llm.autograd import no_grad, token_log_likelihoods
from repro.llm.transformer import CausalLM


def evaluate_perplexity(
    model: CausalLM,
    sequences: np.ndarray,
    batch_size: int = 8,
) -> float:
    """Token-level perplexity of a model over ``(n, seq_len)`` windows.

    Each window contributes ``seq_len - 1`` next-token predictions; the
    result is ``exp(mean nll)`` over all of them.
    """
    sequences = np.asarray(sequences)
    if sequences.ndim != 2 or sequences.shape[1] < 2:
        raise ModelError(
            f"sequences must be (n, seq_len>=2), got shape {sequences.shape}"
        )
    total_nll = 0.0
    total_tokens = 0
    with no_grad():
        for start in range(0, sequences.shape[0], batch_size):
            batch = sequences[start : start + batch_size]
            logits = model.forward(batch[:, :-1]).data
            nll = token_log_likelihoods(logits, batch[:, 1:])
            total_nll += float(nll.sum())
            total_tokens += nll.size
    return float(np.exp(total_nll / total_tokens))


def relative_accuracy(ppl: float, reference_ppl: float) -> float:
    """Map perplexity to the search's higher-is-better accuracy scale."""
    if ppl <= 0 or reference_ppl <= 0:
        raise ModelError("perplexities must be positive")
    return reference_ppl / ppl


def accuracy_drop_percent(ppl: float, reference_ppl: float) -> float:
    """Relative accuracy drop vs the reference, in percent.

    Matches the red numbers of Table II: negative when the scheme is
    worse than the reference, ~0 when equal, positive when (slightly)
    better.
    """
    return (relative_accuracy(ppl, reference_ppl) - 1.0) * 100.0
