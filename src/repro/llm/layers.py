"""Neural-network building blocks on top of the autograd engine.

Plain numpy implementations of the layers a weight-only-quantized
Transformer needs: linear projections (the FP-INT GeMM sites), token and
position embeddings, LayerNorm (OPT) and RMSNorm (LLaMA).

Parameters are :class:`repro.llm.autograd.Tensor` instances with
``requires_grad=True``; modules expose ``parameters()`` for the
optimizer and ``state_dict()`` / ``load_state_dict()`` for the zoo
cache.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ModelError
from repro.llm.autograd import Tensor, embedding_lookup

Array = np.ndarray


class Module:
    """Base class: parameter registration via attribute discovery."""

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for name, value in vars(self).items():
            path = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{path}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{path}.{index}.")

    def parameters(self) -> list[Tensor]:
        return [param for _, param in self.named_parameters()]

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(param.data.size for param in self.parameters())

    def state_dict(self) -> dict[str, Array]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, Array]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ModelError(
                f"state dict mismatch; missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in params.items():
            if param.data.shape != state[name].shape:
                raise ModelError(
                    f"shape mismatch for {name}: model {param.data.shape} "
                    f"vs state {state[name].shape}"
                )
            param.data[...] = state[name]


def _parameter(array: Array) -> Tensor:
    return Tensor(np.asarray(array, dtype=np.float32), requires_grad=True)


class Linear(Module):
    """Affine projection ``y = x @ W + b`` — an FP-INT GeMM site.

    Weight shape is ``(in_features, out_features)`` so activations hit
    the matmul untransposed, matching the grouping-along-reduction-axis
    convention of the Anda format.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        scale = 1.0 / np.sqrt(in_features)
        self.weight = _parameter(rng.normal(0.0, scale, size=(in_features, out_features)))
        self.bias = _parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token (or position) embedding table."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator) -> None:
        self.weight = _parameter(rng.normal(0.0, 0.02, size=(num_embeddings, dim)))
        self.num_embeddings = num_embeddings

    def __call__(self, token_ids: Array) -> Tensor:
        ids = np.asarray(token_ids)
        if ids.max(initial=0) >= self.num_embeddings or ids.min(initial=0) < 0:
            raise ModelError(
                f"token id out of range for embedding of size {self.num_embeddings}"
            )
        return embedding_lookup(self.weight, ids)


class LayerNorm(Module):
    """Standard LayerNorm over the last axis (OPT family)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.gain = _parameter(np.ones(dim))
        self.shift = _parameter(np.zeros(dim))
        self.eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (variance + self.eps) ** -0.5
        return normed * self.gain + self.shift


class RMSNorm(Module):
    """Root-mean-square norm without re-centering (LLaMA family)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.gain = _parameter(np.ones(dim))
        self.eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        mean_square = (x * x).mean(axis=-1, keepdims=True)
        return x * (mean_square + self.eps) ** -0.5 * self.gain


def make_norm(kind: str, dim: int) -> Module:
    """Factory for the per-family normalization layer."""
    if kind == "layernorm":
        return LayerNorm(dim)
    if kind == "rmsnorm":
        return RMSNorm(dim)
    raise ModelError(f"unknown norm kind {kind!r}")
