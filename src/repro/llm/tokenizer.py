"""Byte-level tokenizer (vocabulary = 256).

The sim model zoo trains on bytes: no merges, no out-of-vocabulary
tokens, fully deterministic — the simplest substrate that still gives
perplexity a meaningful, dataset-dependent value.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

VOCAB_SIZE = 256


class ByteTokenizer:
    """Encode text as UTF-8 bytes and back."""

    vocab_size = VOCAB_SIZE

    def encode(self, text: str) -> np.ndarray:
        """Text -> uint8 token array."""
        return np.frombuffer(text.encode("utf-8"), dtype=np.uint8).copy()

    def decode(self, tokens: np.ndarray) -> str:
        """Token array -> text (raises on invalid ids)."""
        tokens = np.asarray(tokens)
        if tokens.size and (tokens.min() < 0 or tokens.max() > 255):
            raise ModelError("byte tokenizer ids must be in [0, 255]")
        return tokens.astype(np.uint8).tobytes().decode("utf-8", errors="replace")
