"""From-scratch language-model training (Adam + cosine schedule).

The paper evaluates pre-trained checkpoints; with no downloadable
weights available, the model zoo trains its scaled-down twins on the
synthetic corpus mixture.  Training always runs in full float32 — the
quantization under study is strictly post-training, applied through the
activation taps at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.llm.transformer import CausalLM


class Adam:
    """Adam optimizer with optional gradient clipping."""

    def __init__(
        self,
        parameters,
        learning_rate: float = 3e-3,
        betas: tuple[float, float] = (0.9, 0.98),
        eps: float = 1e-8,
        clip_norm: float | None = 1.0,
    ) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ModelError("optimizer received no parameters")
        self.learning_rate = learning_rate
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.clip_norm = clip_norm
        self.step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _global_norm(self) -> float:
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float((param.grad.astype(np.float64) ** 2).sum())
        return float(np.sqrt(total))

    def step(self, learning_rate: float | None = None) -> None:
        """Apply one update from the accumulated gradients."""
        lr = self.learning_rate if learning_rate is None else learning_rate
        self.step_count += 1
        scale = 1.0
        if self.clip_norm is not None:
            norm = self._global_norm()
            if norm > self.clip_norm:
                scale = self.clip_norm / (norm + 1e-12)
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad * scale
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            param.data -= lr * update

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


@dataclass
class TrainingResult:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ModelError("training produced no steps")
        return float(np.mean(self.losses[-10:]))


def sample_batch(
    tokens: np.ndarray, batch_size: int, seq_len: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw a ``(batch, seq_len + 1)`` batch of contiguous windows."""
    tokens = np.asarray(tokens)
    if tokens.size < seq_len + 2:
        raise ModelError("token stream too short for the requested sequence length")
    starts = rng.integers(0, tokens.size - seq_len - 1, size=batch_size)
    return np.stack([tokens[s : s + seq_len + 1] for s in starts]).astype(np.int64)


def cosine_schedule(step: int, total: int, peak: float, warmup: int = 20) -> float:
    """Linear warmup then cosine decay to 10% of the peak rate."""
    if step < warmup:
        return peak * (step + 1) / warmup
    progress = (step - warmup) / max(total - warmup, 1)
    return peak * (0.1 + 0.9 * 0.5 * (1 + np.cos(np.pi * progress)))


def train_language_model(
    model: CausalLM,
    tokens: np.ndarray,
    steps: int,
    batch_size: int = 12,
    seq_len: int = 96,
    learning_rate: float = 3e-3,
    seed: int = 0,
) -> TrainingResult:
    """Train a model in place on a token stream; returns the loss curve."""
    if steps < 1:
        raise ModelError(f"steps must be >= 1, got {steps}")
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), learning_rate=learning_rate)
    result = TrainingResult()
    for step in range(steps):
        batch = sample_batch(tokens, batch_size, seq_len, rng)
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step(cosine_schedule(step, steps, learning_rate))
        result.losses.append(float(loss.data))
    return result
