"""Model configurations: paper-scale shapes and scaled-down sim twins.

Two registries live here:

* :data:`PAPER_CONFIGS` — the *real* dimensions of the OPT / LLaMA /
  LLaMA-2 models the paper evaluates.  These feed the hardware
  experiments (Fig. 2, Fig. 16-18): operation counts and data-movement
  volumes only need shapes, not functional execution.
* :data:`SIM_CONFIGS` — scaled-down twins (``*-sim``) that preserve each
  family's architecture (OPT: LayerNorm + ReLU FFN + learned positions;
  LLaMA: RMSNorm + SwiGLU + rotary embeddings) and the relative size
  ordering, but are small enough to train from scratch on CPU.  These
  feed the accuracy experiments (Fig. 5-7, 9, 14, Table II).

The split mirrors the paper's own two-level methodology (model accuracy
from software, system performance from the simulator) and is documented
as a substitution in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.bops import module_mac_weights
from repro.core.precision import TensorKind
from repro.errors import ModelError


@dataclass(frozen=True)
class ModelConfig:
    """Architecture description of one causal language model.

    Attributes:
        name: registry key (e.g. ``"opt-1.3b"`` or ``"opt-1.3b-sim"``).
        family: ``"opt"`` or ``"llama"`` — selects norm/FFN/positions.
        n_layers: Transformer block count.
        d_model: hidden width.
        n_heads: attention heads (must divide ``d_model``).
        ffn_dim: feed-forward intermediate width.
        vocab_size: tokenizer vocabulary (256 for the byte tokenizer).
        max_seq_len: positions available to learned embeddings.
        seed: weight-init / training seed of the sim twin.
        train_steps: zoo training budget of the sim twin.
    """

    name: str
    family: str
    n_layers: int
    d_model: int
    n_heads: int
    ffn_dim: int
    vocab_size: int = 256
    max_seq_len: int = 256
    seed: int = 0
    train_steps: int = 350

    def __post_init__(self) -> None:
        if self.family not in ("opt", "llama"):
            raise ModelError(f"unknown model family {self.family!r}")
        if self.d_model % self.n_heads != 0:
            raise ModelError(
                f"{self.name}: d_model {self.d_model} not divisible by "
                f"n_heads {self.n_heads}"
            )
        if self.family == "llama" and (self.d_model // self.n_heads) % 2 != 0:
            raise ModelError(f"{self.name}: rotary embeddings need even head_dim")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def gated_ffn(self) -> bool:
        """LLaMA-family models use the gated SwiGLU feed-forward."""
        return self.family == "llama"

    @property
    def norm(self) -> str:
        return "rmsnorm" if self.family == "llama" else "layernorm"

    def mac_weights(self) -> dict[TensorKind, int]:
        """Per-token FP-INT GeMM MAC counts by tensor type (one block)."""
        return module_mac_weights(self.d_model, self.ffn_dim, self.gated_ffn)

    def fp_int_macs_per_token(self) -> int:
        """All FP-INT GeMM MACs per generated/processed token."""
        return self.n_layers * sum(self.mac_weights().values())

    def attention_macs_per_token(self, context_length: int) -> int:
        """FP-FP attention MACs (QK^T and PV) per token at a context size."""
        return self.n_layers * 2 * context_length * self.d_model

    def sim_twin(self) -> "ModelConfig":
        """The scaled-down twin of a paper-scale config (or self)."""
        if self.name.endswith("-sim"):
            return self
        return get_config(self.name + "-sim")


def _paper(name, family, n_layers, d_model, n_heads, ffn_dim) -> ModelConfig:
    return ModelConfig(
        name=name,
        family=family,
        n_layers=n_layers,
        d_model=d_model,
        n_heads=n_heads,
        ffn_dim=ffn_dim,
        max_seq_len=2048,
    )


#: Real dimensions of the paper's benchmark models (OPT: Zhang et al.
#: 2022; LLaMA: Touvron et al. 2023), in the paper's Table II order.
PAPER_CONFIGS: dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in [
        _paper("opt-125m", "opt", 12, 768, 12, 3072),
        _paper("opt-1.3b", "opt", 24, 2048, 32, 8192),
        _paper("opt-2.7b", "opt", 32, 2560, 32, 10240),
        _paper("opt-6.7b", "opt", 32, 4096, 32, 16384),
        _paper("llama-7b", "llama", 32, 4096, 32, 11008),
        _paper("llama2-7b", "llama", 32, 4096, 32, 11008),
        _paper("opt-13b", "opt", 40, 5120, 40, 20480),
        _paper("llama-13b", "llama", 40, 5120, 40, 13824),
        _paper("llama2-13b", "llama", 40, 5120, 40, 13824),
        _paper("opt-30b", "opt", 48, 7168, 56, 28672),
    ]
}

#: Benchmark order used throughout the paper's tables and figures.
BENCHMARK_MODELS: tuple[str, ...] = (
    "opt-1.3b",
    "opt-2.7b",
    "opt-6.7b",
    "llama-7b",
    "llama2-7b",
    "opt-13b",
    "llama-13b",
    "llama2-13b",
    "opt-30b",
)


def _sim(name, family, n_layers, d_model, n_heads, ffn_mult, seed, steps) -> ModelConfig:
    return ModelConfig(
        name=name + "-sim",
        family=family,
        n_layers=n_layers,
        d_model=d_model,
        n_heads=n_heads,
        ffn_dim=d_model * ffn_mult,
        max_seq_len=256,
        seed=seed,
        train_steps=steps,
    )


#: Scaled-down, CPU-trainable twins.  Widths/depths keep the paper's
#: relative ordering; seeds differ so "LLaMA" and "LLaMA-2" twins are
#: distinct models like their namesakes.
SIM_CONFIGS: dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in [
        _sim("opt-125m", "opt", 2, 64, 2, 4, seed=101, steps=300),
        _sim("opt-1.3b", "opt", 2, 96, 4, 4, seed=102, steps=350),
        _sim("opt-2.7b", "opt", 3, 96, 4, 4, seed=103, steps=350),
        _sim("opt-6.7b", "opt", 3, 128, 4, 4, seed=104, steps=350),
        _sim("llama-7b", "llama", 3, 128, 4, 3, seed=105, steps=350),
        _sim("llama2-7b", "llama", 3, 128, 4, 3, seed=106, steps=350),
        _sim("opt-13b", "opt", 4, 128, 4, 4, seed=107, steps=350),
        _sim("llama-13b", "llama", 4, 160, 4, 3, seed=108, steps=350),
        _sim("llama2-13b", "llama", 4, 160, 4, 3, seed=109, steps=350),
        _sim("opt-30b", "opt", 4, 192, 4, 4, seed=110, steps=350),
    ]
}


def get_config(name: str) -> ModelConfig:
    """Look up a model config by name in either registry.

    Raises:
        ModelError: if the name is unknown.
    """
    if name in PAPER_CONFIGS:
        return PAPER_CONFIGS[name]
    if name in SIM_CONFIGS:
        return SIM_CONFIGS[name]
    known = sorted(PAPER_CONFIGS) + sorted(SIM_CONFIGS)
    raise ModelError(f"unknown model {name!r}; known: {', '.join(known)}")


def tiny_test_config(
    family: str = "opt", d_model: int = 32, n_layers: int = 1, seed: int = 0
) -> ModelConfig:
    """A throwaway config for unit tests (not in any registry)."""
    return replace(
        _sim("tiny-test", family, n_layers, d_model, 2, 2 if family == "llama" else 4,
             seed=seed, steps=10),
        name=f"tiny-{family}-test",
    )
