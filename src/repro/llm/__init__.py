"""Numpy LLM substrate: models, training, datasets, perplexity.

This package replaces the paper's PyTorch/HuggingFace stack (documented
substitution — see DESIGN.md): OPT-style and LLaMA-style causal LMs
built on a minimal autograd engine, trained from scratch on synthetic
corpora, with activation tap points on the four FP-INT GeMM tensor
types so post-training activation quantization can be evaluated exactly
as the paper does.

Decoding (:func:`generate` / :func:`generate_text`) shares its
per-request recipe type with the serving stack: both accept a
:class:`repro.serve.SamplingParams` via ``params=`` and draw tokens
through the same :func:`~repro.llm.generation.select_next_token`,
which is what keeps sequential and batched-engine decoding
token-bitwise identical.
"""

from repro.llm.config import (
    BENCHMARK_MODELS,
    PAPER_CONFIGS,
    SIM_CONFIGS,
    ModelConfig,
    get_config,
)
from repro.llm.datasets import (
    DATASETS,
    calibration_sequences,
    load_corpus,
    validation_sequences,
)
from repro.llm.analysis import (
    capture_activations,
    group_exponent_spread,
    mean_spread_by_group_size,
    outlier_stats,
)
from repro.llm.generation import (
    GenerationResult,
    generate,
    generate_text,
    select_next_token,
)
from repro.llm.hooks import ActivationStatsRecorder, anda_quantizer, per_kind_quantizer
from repro.llm.kv_quant import AndaKVCache, kv_compression_ratio, quantized_cache_factory
from repro.llm.perplexity import (
    accuracy_drop_percent,
    evaluate_perplexity,
    relative_accuracy,
)
from repro.llm.tokenizer import ByteTokenizer
from repro.llm.training import train_language_model
from repro.llm.transformer import CausalLM, build_model
from repro.llm.zoo import get_model, prewarm

__all__ = [
    "ActivationStatsRecorder",
    "AndaKVCache",
    "BENCHMARK_MODELS",
    "kv_compression_ratio",
    "quantized_cache_factory",
    "ByteTokenizer",
    "CausalLM",
    "DATASETS",
    "ModelConfig",
    "PAPER_CONFIGS",
    "SIM_CONFIGS",
    "accuracy_drop_percent",
    "anda_quantizer",
    "build_model",
    "calibration_sequences",
    "capture_activations",
    "evaluate_perplexity",
    "group_exponent_spread",
    "mean_spread_by_group_size",
    "outlier_stats",
    "GenerationResult",
    "generate",
    "generate_text",
    "get_config",
    "get_model",
    "select_next_token",
    "load_corpus",
    "per_kind_quantizer",
    "prewarm",
    "relative_accuracy",
    "train_language_model",
    "validation_sequences",
]
