"""Causal multi-head self-attention with the A_qkv / A_o tap points.

One fused QKV projection consumes the (possibly quantized) ``A_qkv``
activation; the attention output consumes ``A_o`` before the output
projection.  LLaMA-family models apply rotary position embeddings to
queries and keys; OPT-family models rely on the model's learned position
embeddings instead.

Two forward paths are provided:

* :meth:`MultiHeadAttention.__call__` — autograd path used for training
  and whole-sequence (prefill) evaluation.
* :meth:`MultiHeadAttention.step` — plain-numpy incremental path with a
  KV cache, used by :mod:`repro.llm.generation` (the paper keeps the KV
  cache in FP16; so does this model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.precision import TensorKind
from repro.errors import ModelError
from repro.llm.autograd import Tensor, concat, softmax
from repro.llm.config import ModelConfig
from repro.llm.hooks import ActivationTap
from repro.llm.layers import Linear, Module

#: Additive mask value for future positions (large enough to zero the
#: softmax in float32 without producing NaN through inf - inf).
MASK_VALUE = -1e9


def causal_mask(length: int) -> np.ndarray:
    """Upper-triangular additive mask of shape (length, length)."""
    mask = np.zeros((length, length), dtype=np.float32)
    mask[np.triu_indices(length, k=1)] = MASK_VALUE
    return mask


# -- decode hot-path accounting -----------------------------------------------


@dataclass
class KVHotPathStats:
    """Process-wide counters of Python-side KV re-materialization work.

    Two byte streams distinguish necessary work from waste on the
    decode hot path:

    * ``copy_bytes`` — bytes memcpy'd moving *already-stored* history
      around: capacity-doubling buffer growth, scratch growth, and the
      reference implementations' per-append concatenates.  Amortized
      O(1) per token for the preallocated path; O(history) per step
      for the reference path.
    * ``dequant_bytes`` — bytes materialized float16 -> float32 for
      attention reads.  Incremental views convert only the tail
      appended since the last step; the reference path re-converts the
      whole history every layer every step.

    The engine snapshots these around each step and reports the deltas
    (``StepReport.kv_copy_bytes`` / ``kv_dequant_bytes``), which is
    what makes the hot-path win measurable and CI-gateable.
    """

    copy_bytes: int = 0
    dequant_bytes: int = 0

    def snapshot(self) -> tuple[int, int]:
        return (self.copy_bytes, self.dequant_bytes)

    def reset(self) -> None:
        self.copy_bytes = 0
        self.dequant_bytes = 0


#: The process-wide instance every cache variant reports into.
HOT_PATH_STATS = KVHotPathStats()


def grow_buffer(
    buffer: np.ndarray | None,
    shape: tuple[int, ...],
    axis: int,
    kept: int,
    dtype: np.dtype,
) -> np.ndarray:
    """Allocate a larger cache buffer, carrying over its logical prefix.

    The one growth implementation shared by every capacity-doubling
    buffer on the hot path — float16 storage, float32 dequant views,
    and the paged gather scratch — so the prefix-copy slicing and the
    ``copy_bytes`` accounting cannot drift apart between them.

    Args:
        buffer: current buffer, or None for a first allocation.
        shape: target shape (the new capacity already at ``shape[axis]``).
        axis: the time axis being grown.
        kept: logical positions to carry over along ``axis``.
    """
    grown = np.empty(shape, dtype=dtype)
    if buffer is not None and kept:
        index = (slice(None),) * axis + (slice(0, kept),)
        grown[index] = buffer[index]
        HOT_PATH_STATS.copy_bytes += grown[index].nbytes
    return grown


# -- per-forward-pass memos ---------------------------------------------------
#
# Every layer of a forward pass asks for the same additive masks and
# position ranges (all layers sit at the same cache lengths), so these
# small module-level memos turn O(layers) identical constructions per
# step into O(1).  Values are marked read-only: callers only ever add
# or index them, never mutate.

_MASK_MEMO: dict[tuple[int, int], np.ndarray] = {}
#: Cap the memo by *bytes*, not entries: one full-prompt prefill mask is
#: O(L^2) float32 (a 1024-position mask is ~4 MB), so an entry cap
#: alone could pin hundreds of MB across varied prompt lengths.
_MASK_MEMO_MAX_BYTES = 32 * 1024 * 1024
_MASK_MEMO_BYTES = 0

_CHUNK_POS_MEMO: tuple[tuple, np.ndarray] | None = None


def history_mask(start: int, new_len: int) -> np.ndarray | None:
    """Additive causal mask for queries at ``[start, start + new_len)``.

    The history spans ``start + new_len`` cached positions (the query
    rows' own positions included).  Returns ``None`` when the mask
    would be all zeros — the single-token decode case — because adding
    a zero mask is a bitwise no-op through the softmax (``exp`` maps
    ``-0.0`` and ``+0.0`` to the same ``1.0``) and skipping it saves
    one (batch, heads, 1, total) allocation per request per layer.
    """
    if new_len <= 1:
        return None
    global _MASK_MEMO_BYTES
    key = (start, new_len)
    mask = _MASK_MEMO.get(key)
    if mask is None:
        total = start + new_len
        positions = np.arange(start, total)[:, None]
        history = np.arange(total)[None, :]
        mask = np.where(history > positions, MASK_VALUE, 0.0).astype(np.float32)
        mask.setflags(write=False)
        if _MASK_MEMO_BYTES + mask.nbytes > _MASK_MEMO_MAX_BYTES:
            _MASK_MEMO.clear()
            _MASK_MEMO_BYTES = 0
        _MASK_MEMO[key] = mask
        _MASK_MEMO_BYTES += mask.nbytes
    return mask


def chunk_positions(starts: list[int], lengths: list[int]) -> np.ndarray:
    """Flattened per-segment position ids for a mixed step's chunk lane.

    Memoized single-slot: all layers of one forward pass (and the
    position-embedding lookup before them) share identical
    ``(starts, lengths)``, so the concatenated arange is built once per
    pass instead of once per layer.
    """
    global _CHUNK_POS_MEMO
    key = (tuple(starts), tuple(lengths))
    memo = _CHUNK_POS_MEMO
    if memo is not None and memo[0] == key:
        return memo[1]
    positions = np.concatenate(
        [np.arange(start, start + length) for start, length in zip(starts, lengths)]
    )
    positions.setflags(write=False)
    _CHUNK_POS_MEMO = (key, positions)
    return positions


_CONTEXT_SCRATCH: dict[tuple, np.ndarray] = {}
_CONTEXT_SCRATCH_CAP = 8


def _context_scratch(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    """Reusable attention-context buffer for one step shape.

    ``step_batch`` / ``step_mixed`` previously concatenated per-request
    context slices into a fresh array every layer; writing the slices
    into a per-shape scratch reuses one allocation across all layers of
    a step (the downstream transpose+reshape copies out of it before
    the next layer runs).  The dtype is the attention core's own output
    dtype — the scores pipeline runs in float64 (the float64 ``scale``
    scalar promotes it), and storing the context any narrower would
    round it before the output projection, breaking bitwise parity
    with the unbatched ``step`` path.
    """
    key = (shape, dtype)
    scratch = _CONTEXT_SCRATCH.get(key)
    if scratch is None:
        if len(_CONTEXT_SCRATCH) >= _CONTEXT_SCRATCH_CAP:
            _CONTEXT_SCRATCH.clear()
        scratch = np.empty(shape, dtype=dtype)
        _CONTEXT_SCRATCH[key] = scratch
    return scratch


_ROTARY_BUILD_MEMO: dict[tuple[int, int, float], "RotaryTable"] = {}
_ROTARY_BUILD_MEMO_CAP = 32


@dataclass
class RotaryTable:
    """Precomputed cos/sin tables for rotary position embeddings.

    Tables are pure functions of ``(head_dim, max_len, base)``, so
    :meth:`build` memoizes them — every attention layer of a model
    (and equal-geometry models in one process) shares a single
    instance, which is what lets :meth:`gather` keep a one-slot memo
    that hits for layers 2..L of each forward pass.  Instances are
    immutable by convention: ``cos``/``sin`` are never written after
    construction.
    """

    cos: np.ndarray
    sin: np.ndarray
    _gather_memo: tuple[tuple, np.ndarray, np.ndarray] | None = field(
        default=None, repr=False
    )

    @classmethod
    def build(cls, head_dim: int, max_len: int, base: float = 10000.0) -> "RotaryTable":
        key = (head_dim, max_len, base)
        table = _ROTARY_BUILD_MEMO.get(key)
        if table is not None:
            return table
        half = head_dim // 2
        freqs = base ** (-np.arange(0, half, dtype=np.float64) / half)
        angles = np.outer(np.arange(max_len, dtype=np.float64), freqs)
        double = np.concatenate([angles, angles], axis=-1)
        cos = np.cos(double).astype(np.float32)
        sin = np.sin(double).astype(np.float32)
        # The instance is shared process-wide (and slice() hands out
        # views of it): freeze the tables so an in-place mutation by
        # any one caller cannot corrupt every other model.
        cos.setflags(write=False)
        sin.setflags(write=False)
        table = cls(cos=cos, sin=sin)
        if len(_ROTARY_BUILD_MEMO) >= _ROTARY_BUILD_MEMO_CAP:
            _ROTARY_BUILD_MEMO.clear()
        _ROTARY_BUILD_MEMO[key] = table
        return table

    def slice(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        if stop > self.cos.shape[0]:
            raise ModelError(
                f"rotary table holds {self.cos.shape[0]} positions, "
                f"requested up to {stop}"
            )
        return self.cos[start:stop], self.sin[start:stop]

    def gather(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-request cos/sin rows for arbitrary (unsorted) positions.

        One-slot memo: every layer of a forward pass gathers the same
        positions, so the fancy-index copy runs once per pass instead
        of once per layer (the table instance is shared via
        :meth:`build`'s memo).
        """
        key = (positions.tobytes(), positions.dtype.str, positions.shape)
        memo = self._gather_memo
        if memo is not None and memo[0] == key:
            return memo[1], memo[2]
        limit = int(positions.max(initial=0)) + 1
        if limit > self.cos.shape[0]:
            raise ModelError(
                f"rotary table holds {self.cos.shape[0]} positions, "
                f"requested up to {limit}"
            )
        cos_rows = self.cos[positions]
        sin_rows = self.sin[positions]
        cos_rows.setflags(write=False)
        sin_rows.setflags(write=False)
        self._gather_memo = (key, cos_rows, sin_rows)
        return cos_rows, sin_rows


def _rotate_half(x: Tensor) -> Tensor:
    half = x.shape[-1] // 2
    front = x[..., :half]
    back = x[..., half:]
    return concat([-back, front], axis=-1)


def apply_rotary(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotate (batch, heads, time, head_dim) queries/keys by position."""
    return x * Tensor(cos) + _rotate_half(x) * Tensor(sin)


def _rotate_half_np(x: np.ndarray) -> np.ndarray:
    half = x.shape[-1] // 2
    return np.concatenate([-x[..., half:], x[..., :half]], axis=-1)


#: Smallest time-axis capacity a cache buffer is allocated with; single
#: -token decode growth doubles from here instead of reallocating at
#: every one of the first appends.
_INITIAL_CAPACITY = 16


class KVCache:
    """Per-layer key/value history for incremental decoding (FP16).

    Two subclass seams keep every cache variant on one append path:

    * **compression** — :meth:`compress` (a row-local transform applied
      on write) and :meth:`compression_key`; the batched decode path
      uses those to compress a whole batch's K/V in one call and then
      append per request via :meth:`append_precompressed`.
    * **storage** — :meth:`_store` (persist float16 rows) and
      :meth:`view` (return the full float32 history).  The paged
      subclass (:class:`repro.serve.kvpool.paged.PagedKVCache`)
      scatters rows into pool blocks on write and gathers the
      non-contiguous blocks on read.  Because both store the same
      float16 bytes, the two are bitwise interchangeable under
      ``step`` / ``step_batch``.

    Storage here is the decode hot path, so per-step cost must be
    proportional to *new* tokens, not history length:

    * float16 rows land in preallocated, capacity-doubling buffers
      with a logical length (``_len``) — appending a token is one row
      write, and buffer-growth copies amortize to O(1) per token;
    * :meth:`view` keeps a memoized float32 twin of the storage and
      dequantizes only the tail appended since the last call,
      returning zero-copy slices of it.  The memo is invalidated if
      :meth:`compression_key` ever changes (defensive — compression is
      applied at write time, so stored bytes never change under it).

    Both choices are bitwise-invisible: stored float16 bytes are
    identical to the old concatenate storage, float16 -> float32
    conversion is exact, and numpy matmuls buffer strided views to
    contiguous memory before BLAS sees them.
    :class:`ReferenceKVCache` keeps the O(history)-per-step storage
    alive as the parity oracle the growth property tests and the
    decode hot-path benchmark compare against.
    """

    __slots__ = ("_k16", "_v16", "_len", "_deq_k", "_deq_v", "_deq_len", "_deq_key")

    def __init__(self) -> None:
        self._k16: np.ndarray | None = None
        self._v16: np.ndarray | None = None
        self._len = 0
        self._deq_k: np.ndarray | None = None
        self._deq_v: np.ndarray | None = None
        self._deq_len = 0
        self._deq_key: tuple | None = None

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        """Write-side transform; must be row-local along leading axes."""
        return tensor

    def compression_key(self) -> tuple:
        """Caches with equal keys share one batched compress call."""
        return ("fp16",)

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.append_precompressed(self.compress(k), self.compress(v))

    def append_precompressed(
        self, k: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append K/V already passed through :meth:`compress`."""
        self._store(k.astype(np.float16), v.astype(np.float16))
        return self.view()

    @property
    def keys(self) -> np.ndarray | None:
        """Stored float16 keys ``(batch, heads, length, hd)`` (a view)."""
        return None if self._k16 is None else self._k16[:, :, : self._len]

    @property
    def values(self) -> np.ndarray | None:
        """Stored float16 values ``(batch, heads, length, hd)`` (a view)."""
        return None if self._v16 is None else self._v16[:, :, : self._len]

    def _store(self, k16: np.ndarray, v16: np.ndarray) -> None:
        """Persist new float16 rows into the preallocated buffers."""
        new_len = k16.shape[2]
        end = self._len + new_len
        if self._k16 is None:
            shape = list(k16.shape)
            shape[2] = max(new_len, _INITIAL_CAPACITY)
            self._k16 = np.empty(shape, dtype=np.float16)
            self._v16 = np.empty(shape, dtype=np.float16)
        elif end > self._k16.shape[2]:
            capacity = self._k16.shape[2]
            while capacity < end:
                capacity *= 2
            shape = list(self._k16.shape)
            shape[2] = capacity
            grown = tuple(shape)
            self._k16 = grow_buffer(self._k16, grown, 2, self._len, np.float16)
            self._v16 = grow_buffer(self._v16, grown, 2, self._len, np.float16)
        self._k16[:, :, self._len : end] = k16
        self._v16[:, :, self._len : end] = v16
        self._len = end

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """Full cached history as float32 ``(batch, heads, time, hd)``.

        Memoized: only positions appended since the last call are
        converted; the returned arrays are read-mostly slices of the
        persistent float32 buffers (valid until the next append forces
        a growth reallocation, i.e. for the current layer step).
        """
        if self._len == 0 or self._k16 is None:
            raise ModelError("view() on an empty KV cache")
        key = self.compression_key()
        if self._deq_key is not None and self._deq_key != key:
            self._deq_len = 0  # compression changed: re-dequantize
        self._deq_key = key
        capacity = self._k16.shape[2]
        if self._deq_k is None or self._deq_k.shape[2] != capacity:
            shape = tuple(self._k16.shape)
            self._deq_k = grow_buffer(self._deq_k, shape, 2, self._deq_len, np.float32)
            self._deq_v = grow_buffer(self._deq_v, shape, 2, self._deq_len, np.float32)
        if self._deq_len < self._len:
            tail = slice(self._deq_len, self._len)
            self._deq_k[:, :, tail] = self._k16[:, :, tail]
            self._deq_v[:, :, tail] = self._v16[:, :, tail]
            HOT_PATH_STATS.dequant_bytes += 2 * self._deq_k[:, :, tail].nbytes
            self._deq_len = self._len
        keys = self._deq_k[:, :, : self._len]
        values = self._deq_v[:, :, : self._len]
        # The old view() returned private copies; these alias the
        # persistent buffers, so hand out read-only views (the buffers
        # themselves stay writable for the next tail dequant).
        keys.setflags(write=False)
        values.setflags(write=False)
        return keys, values

    @property
    def length(self) -> int:
        return self._len


class ReferenceKVCache(KVCache):
    """The pre-optimization O(history)-per-step storage, kept as oracle.

    Appends by whole-array concatenate and dequantizes the full
    history on every :meth:`view` — exactly what :class:`KVCache` did
    before preallocated buffers and incremental views.  The growth
    property tests pin the optimized storage bitwise against this, and
    ``benchmarks/bench_decode_hotpath.py`` measures the step-latency
    gap.  An optional ``codec`` delegates the write-side compression,
    so one reference class covers FP16 and Anda storage.
    """

    __slots__ = ("_codec", "_ref_k", "_ref_v")

    def __init__(self, codec: KVCache | None = None) -> None:
        super().__init__()
        self._codec = codec
        self._ref_k: np.ndarray | None = None
        self._ref_v: np.ndarray | None = None

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        return tensor if self._codec is None else self._codec.compress(tensor)

    def compression_key(self) -> tuple:
        return ("fp16",) if self._codec is None else self._codec.compression_key()

    @property
    def keys(self) -> np.ndarray | None:
        return self._ref_k

    @property
    def values(self) -> np.ndarray | None:
        return self._ref_v

    def _store(self, k16: np.ndarray, v16: np.ndarray) -> None:
        if self._ref_k is None:
            self._ref_k, self._ref_v = k16, v16
        else:
            self._ref_k = np.concatenate([self._ref_k, k16], axis=2)
            self._ref_v = np.concatenate([self._ref_v, v16], axis=2)
            HOT_PATH_STATS.copy_bytes += self._ref_k.nbytes + self._ref_v.nbytes

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        if self._ref_k is None:
            raise ModelError("view() on an empty KV cache")
        keys = self._ref_k.astype(np.float32)
        values = self._ref_v.astype(np.float32)
        HOT_PATH_STATS.dequant_bytes += keys.nbytes + values.nbytes
        return keys, values

    @property
    def length(self) -> int:
        return 0 if self._ref_k is None else self._ref_k.shape[2]


class MultiHeadAttention(Module):
    """Fused-QKV causal attention with activation taps."""

    def __init__(
        self, config: ModelConfig, tap: ActivationTap, rng: np.random.Generator
    ) -> None:
        bias = config.family == "opt"
        self.qkv_proj = Linear(config.d_model, 3 * config.d_model, rng, bias=bias)
        self.out_proj = Linear(config.d_model, config.d_model, rng, bias=bias)
        self.n_heads = config.n_heads
        self.head_dim = config.head_dim
        self.scale = 1.0 / np.sqrt(config.head_dim)
        self.tap = tap
        self.rotary = (
            RotaryTable.build(config.head_dim, config.max_seq_len)
            if config.family == "llama"
            else None
        )

    # -- training / prefill path ----------------------------------------

    def __call__(self, x: Tensor) -> Tensor:
        batch, length, d_model = x.shape
        x = self.tap.apply(TensorKind.QKV, x)
        qkv = self.qkv_proj(x)  # (B, T, 3D)
        qkv = qkv.reshape(batch, length, 3, self.n_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        if self.rotary is not None:
            cos, sin = self.rotary.slice(0, length)
            q = apply_rotary(q, cos, sin)
            k = apply_rotary(k, cos, sin)

        scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale
        scores = scores + Tensor(causal_mask(length))
        weights = softmax(scores, axis=-1)
        context = weights @ v  # (B, H, T, hd)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, d_model)

        context = self.tap.apply(TensorKind.O, context)
        return self.out_proj(context)

    # -- incremental decode path ------------------------------------------

    def _project_qkv(self, x: np.ndarray) -> np.ndarray:
        """QKV-tap + fused projection: ``(B, T, D)`` -> ``(3, B, H, T, hd)``."""
        batch, new_len, _ = x.shape
        if self.tap.quantizer is not None:
            x = self.tap.quantizer(TensorKind.QKV, x)
        qkv = x @ self.qkv_proj.weight.data
        if self.qkv_proj.bias is not None:
            qkv = qkv + self.qkv_proj.bias.data
        qkv = qkv.reshape(batch, new_len, 3, self.n_heads, self.head_dim)
        return qkv.transpose(2, 0, 3, 1, 4)

    def _attention_core(
        self, q: np.ndarray, keys: np.ndarray, values: np.ndarray, start: int
    ) -> np.ndarray:
        """Masked softmax attention over one request's exact history.

        ``q`` is ``(batch, heads, new, head_dim)``; ``keys``/``values``
        hold ``start + new`` cached positions.  No padding is involved:
        scores span exactly the request's history, which is what makes
        batched decode token-identical to sequential decode.
        """
        new_len = q.shape[2]
        scores = (q @ keys.swapaxes(-1, -2)) * self.scale
        mask = history_mask(start, new_len)
        if mask is not None:
            scores = scores + mask
        scores -= scores.max(axis=-1, keepdims=True)
        weights_np = np.exp(scores)
        weights_np /= weights_np.sum(axis=-1, keepdims=True)
        return weights_np @ values

    def _project_out(self, context: np.ndarray) -> np.ndarray:
        """O-tap + output projection for ``(B, T, D)`` attention context."""
        if self.tap.quantizer is not None:
            context = self.tap.quantizer(TensorKind.O, context)
        out = context @ self.out_proj.weight.data
        if self.out_proj.bias is not None:
            out = out + self.out_proj.bias.data
        return out.astype(np.float32)

    def step(self, x: np.ndarray, cache: KVCache) -> np.ndarray:
        """Process new tokens with cached history (plain numpy).

        Args:
            x: ``(batch, new_tokens, d_model)`` activations.
            cache: layer cache; extended in place.
        """
        batch, new_len, d_model = x.shape
        start = cache.length
        qkv = self._project_qkv(x)
        q, k, v = qkv[0], qkv[1], qkv[2]

        if self.rotary is not None:
            cos, sin = self.rotary.slice(start, start + new_len)
            q = q * cos + _rotate_half_np(q) * sin
            k = k * cos + _rotate_half_np(k) * sin

        keys, values = cache.append(k, v)
        context = self._attention_core(q, keys, values, start)
        context = context.transpose(0, 2, 1, 3).reshape(batch, new_len, d_model)
        return self._project_out(context)

    def step_batch(self, x: np.ndarray, caches: list[KVCache]) -> np.ndarray:
        """Single-token decode for many independent requests at once.

        The projections (QKV, output) run as one batched ``(B, 1, D)``
        GeMM — numpy applies them per leading-axis slice, so each row is
        bitwise identical to a ``batch=1`` :meth:`step` call — while
        attention itself runs per request against that request's
        *exact-length* cache (no cross-request padding).  Each request
        may sit at a different position; rotary/positional phases are
        gathered per request.

        Args:
            x: ``(batch, 1, d_model)`` activations, one row per request.
            caches: one :class:`KVCache` per request for *this* layer,
                each extended in place.
        """
        batch, new_len, d_model = x.shape
        if new_len != 1:
            raise ModelError(f"step_batch decodes one token per request, got {new_len}")
        if len(caches) != batch:
            raise ModelError(
                f"got {len(caches)} caches for a batch of {batch} requests"
            )
        starts = np.array([cache.length for cache in caches])
        qkv = self._project_qkv(x)
        q, k, v = qkv[0], qkv[1], qkv[2]  # (B, H, 1, hd)

        if self.rotary is not None:
            cos, sin = self.rotary.gather(starts)
            cos = cos[:, None, None, :]  # (B, 1, 1, hd) -> broadcasts over heads
            sin = sin[:, None, None, :]
            q = q * cos + _rotate_half_np(q) * sin
            k = k * cos + _rotate_half_np(k) * sin

        # When every cache shares one compression scheme (the engine's
        # case), compress the whole batch's K *and* V in a single
        # stacked call — the transform is row-local along leading
        # axes, so this is bitwise identical to the per-request,
        # per-tensor compress inside append() while paying the codec's
        # fixed overhead once per layer instead of 2x batch times.
        # The fp16 codec is the identity, so it skips even the stack.
        shared_key = caches[0].compression_key()
        precompressed = all(
            cache.compression_key() == shared_key for cache in caches[1:]
        )
        if precompressed and shared_key != ("fp16",):
            stacked = caches[0].compress(np.concatenate([k, v], axis=0))
            k = stacked[:batch]
            v = stacked[batch:]

        # (B, H, 1, hd) scratch reused across the step's layers; the
        # transpose+reshape below hands a fresh copy (or a view consumed
        # before the next layer) to the output projection.
        context: np.ndarray | None = None
        for index, cache in enumerate(caches):
            k_row = k[index : index + 1]
            v_row = v[index : index + 1]
            if precompressed:
                keys, values = cache.append_precompressed(k_row, v_row)
            else:
                keys, values = cache.append(k_row, v_row)
            row = self._attention_core(
                q[index : index + 1], keys, values, int(starts[index])
            )
            if context is None:
                context = _context_scratch((batch,) + row.shape[1:], row.dtype)
            context[index] = row[0]
        context = context.transpose(0, 2, 1, 3).reshape(batch, new_len, d_model)
        return self._project_out(context)

    def step_mixed(
        self, x: np.ndarray, caches: list[KVCache], lengths: list[int]
    ) -> np.ndarray:
        """Variable-length prompt segments for many requests at once.

        The chunk lane of a mixed step: prompt chunks — a budget-sized
        slice of a long prompt, or a whole short prompt — are
        flattened along the time axis into one ``(1, total, d_model)``
        array so the projections, norms and FFN run as a single GeMM
        over every prefill token in the step, while attention runs per
        segment against that request's exact-length cache.  A segment
        may start anywhere (``cache.length`` positions already
        cached): rotary phases are gathered per flattened position
        (:meth:`RotaryTable.gather`), and the causal mask spans
        ``cache_len + segment`` so chunk queries see the whole cached
        history plus their own prefix.  Because multi-row GeMM results
        are row-local (every ``M >= 2`` matmul kernel accumulates rows
        identically), each segment is bitwise identical to the same
        rows of a monolithic prefill — which is what makes chunked
        prefill token-identical to unchunked prefill.  Single-token
        decodes do *not* belong in this lane: OpenBLAS's ``M == 1``
        kernel accumulates differently, so the engine keeps decodes on
        :meth:`step_batch` to preserve their own bitwise guarantee.

        Args:
            x: ``(1, total, d_model)`` activations, segments
                concatenated in request order.
            caches: one :class:`KVCache` per segment for *this* layer,
                each extended in place by its segment's positions.
            lengths: per-segment token counts summing to ``total``.
        """
        batch, total, d_model = x.shape
        if batch != 1:
            raise ModelError(f"mixed steps flatten to batch 1, got {batch}")
        if sum(lengths) != total or min(lengths, default=0) < 1:
            raise ModelError(
                f"segment lengths {lengths} must be positive and sum to {total}"
            )
        if len(caches) != len(lengths):
            raise ModelError(f"got {len(caches)} caches for {len(lengths)} segments")
        starts = [cache.length for cache in caches]
        qkv = self._project_qkv(x)
        q, k, v = qkv[0], qkv[1], qkv[2]  # (1, H, total, hd)

        if self.rotary is not None:
            positions = chunk_positions(starts, lengths)
            cos, sin = self.rotary.gather(positions)  # (total, hd)
            q = q * cos + _rotate_half_np(q) * sin
            k = k * cos + _rotate_half_np(k) * sin

        # (1, H, total, hd) scratch reused across the step's layers.
        context: np.ndarray | None = None
        offset = 0
        for cache, start, length in zip(caches, starts, lengths):
            stop = offset + length
            keys, values = cache.append(k[:, :, offset:stop], v[:, :, offset:stop])
            segment = self._attention_core(q[:, :, offset:stop], keys, values, start)
            if context is None:
                context = _context_scratch(
                    (1, self.n_heads, total, self.head_dim), segment.dtype
                )
            context[:, :, offset:stop] = segment
            offset = stop
        context = context.transpose(0, 2, 1, 3).reshape(batch, total, d_model)
        return self._project_out(context)
