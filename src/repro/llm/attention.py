"""Causal multi-head self-attention with the A_qkv / A_o tap points.

One fused QKV projection consumes the (possibly quantized) ``A_qkv``
activation; the attention output consumes ``A_o`` before the output
projection.  LLaMA-family models apply rotary position embeddings to
queries and keys; OPT-family models rely on the model's learned position
embeddings instead.

Two forward paths are provided:

* :meth:`MultiHeadAttention.__call__` — autograd path used for training
  and whole-sequence (prefill) evaluation.
* :meth:`MultiHeadAttention.step` — plain-numpy incremental path with a
  KV cache, used by :mod:`repro.llm.generation` (the paper keeps the KV
  cache in FP16; so does this model).
"""

from __future__ import annotations

import contextvars
import itertools
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.precision import TensorKind
from repro.errors import ModelError
from repro.llm.autograd import Tensor, concat, softmax
from repro.llm.config import ModelConfig
from repro.llm.hooks import ActivationTap
from repro.llm.layers import Linear, Module

#: Additive mask value for future positions (large enough to zero the
#: softmax in float32 without producing NaN through inf - inf).
MASK_VALUE = -1e9


def causal_mask(length: int) -> np.ndarray:
    """Upper-triangular additive mask of shape (length, length)."""
    mask = np.zeros((length, length), dtype=np.float32)
    mask[np.triu_indices(length, k=1)] = MASK_VALUE
    return mask


# -- decode hot-path accounting -----------------------------------------------


@dataclass
class KVHotPathStats:
    """Process-wide counters of Python-side KV re-materialization work.

    Two byte streams distinguish necessary work from waste on the
    decode hot path:

    * ``copy_bytes`` — bytes memcpy'd moving *already-stored* history
      around: capacity-doubling buffer growth, scratch growth, and the
      reference implementations' per-append concatenates.  Amortized
      O(1) per token for the preallocated path; O(history) per step
      for the reference path.
    * ``dequant_bytes`` — bytes materialized float16 -> float32 for
      attention reads.  Incremental views convert only the tail
      appended since the last step; the reference path re-converts the
      whole history every layer every step.

    The engine snapshots these around each step and reports the deltas
    (``StepReport.kv_copy_bytes`` / ``kv_dequant_bytes``), which is
    what makes the hot-path win measurable and CI-gateable.
    """

    copy_bytes: int = 0
    dequant_bytes: int = 0

    def snapshot(self) -> tuple[int, int]:
        return (self.copy_bytes, self.dequant_bytes)

    def reset(self) -> None:
        self.copy_bytes = 0
        self.dequant_bytes = 0


#: The process-wide instance every cache variant reports into.
HOT_PATH_STATS = KVHotPathStats()


@dataclass
class AttentionDispatchStats:
    """Process-wide counters of attention kernel launches.

    ``dispatches`` counts attention-pipeline launches: one per
    :meth:`MultiHeadAttention._attention_core` call (the per-request
    oracle — prefill segments and ungrouped decode both land here) plus
    one per multi-request bucket run by :class:`BucketedAttention`.
    The per-request decode path costs ``layers x batch`` dispatches per
    step; the grouped path costs ``layers x buckets`` — that ratio is
    the structural win the decode hot-path benchmark gates.

    ``grouped_requests`` counts requests served through a multi-request
    bucket (a measure of how much of the batch the planner managed to
    group), and ``padded_slots`` counts wasted key positions scored in
    padded buckets (``sum(bucket_len - request_len)`` — what the
    pad-waste cap bounds, and what :func:`repro.hw.traffic.
    decode_step_traffic` charges as padded reads).

    The engine snapshots these around each step and reports the deltas
    (``StepReport.attention_dispatches`` etc.), mirroring
    :class:`KVHotPathStats`.
    """

    dispatches: int = 0
    grouped_requests: int = 0
    padded_slots: int = 0

    def snapshot(self) -> tuple[int, int, int]:
        return (self.dispatches, self.grouped_requests, self.padded_slots)

    def reset(self) -> None:
        self.dispatches = 0
        self.grouped_requests = 0
        self.padded_slots = 0


#: The process-wide instance every attention path reports into.
ATTENTION_STATS = AttentionDispatchStats()


@dataclass
class StatScope:
    """Where hot-path counters (and optional trace spans) are routed.

    Every increment site on the decode hot path — buffer growth,
    dequant views, bucket dispatches, the paged gather — reports into
    the *active* scope instead of naming the module globals directly.
    The default scope wraps :data:`HOT_PATH_STATS` /
    :data:`ATTENTION_STATS` (tracer ``None``), so direct model calls
    (benchmarks, tests, sequential ``generate``) behave exactly as
    before; an :class:`~repro.serve.engine.Engine` installs its own
    per-engine stats around each step via :func:`stats_scope`, which is
    what keeps two engines in one process — or one per thread, since
    contextvars are thread-local — from double-counting each other.

    ``tracer`` is an optional :class:`repro.serve.telemetry.StepTracer`
    duck type (``span``/``begin``/``end``/``instant``); hot sites guard
    every use with an ``is not None`` check so the disabled cost is one
    contextvar load per site.
    """

    hot: KVHotPathStats
    attention: AttentionDispatchStats
    tracer: object | None = None


_DEFAULT_SCOPE = StatScope(HOT_PATH_STATS, ATTENTION_STATS)
_ACTIVE_SCOPE: contextvars.ContextVar[StatScope] = contextvars.ContextVar(
    "repro_stats_scope", default=_DEFAULT_SCOPE
)


def active_scope() -> StatScope:
    """The scope hot-path counters currently report into."""
    return _ACTIVE_SCOPE.get()


@contextmanager
def stats_scope(
    hot: KVHotPathStats,
    attention: AttentionDispatchStats,
    tracer: object | None = None,
):
    """Route hot-path counters (and spans) into private stats objects.

    Reentrant and exception-safe: the previous scope is restored on
    exit via the contextvar token, so nested engine steps (or an engine
    stepping inside another engine's traced region) unwind correctly.
    """
    token = _ACTIVE_SCOPE.set(StatScope(hot, attention, tracer))
    try:
        yield
    finally:
        _ACTIVE_SCOPE.reset(token)


def grow_buffer(
    buffer: np.ndarray | None,
    shape: tuple[int, ...],
    axis: int,
    kept: int,
    dtype: np.dtype,
) -> np.ndarray:
    """Allocate a larger cache buffer, carrying over its logical prefix.

    The one growth implementation shared by every capacity-doubling
    buffer on the hot path — float16 storage, float32 dequant views,
    and the paged gather scratch — so the prefix-copy slicing and the
    ``copy_bytes`` accounting cannot drift apart between them.

    Args:
        buffer: current buffer, or None for a first allocation.
        shape: target shape (the new capacity already at ``shape[axis]``).
        axis: the time axis being grown.
        kept: logical positions to carry over along ``axis``.
    """
    grown = np.empty(shape, dtype=dtype)
    if buffer is not None and kept:
        index = (slice(None),) * axis + (slice(0, kept),)
        grown[index] = buffer[index]
        _ACTIVE_SCOPE.get().hot.copy_bytes += grown[index].nbytes
    return grown


# -- per-forward-pass memos ---------------------------------------------------
#
# Every layer of a forward pass asks for the same additive masks and
# position ranges (all layers sit at the same cache lengths), so these
# small module-level memos turn O(layers) identical constructions per
# step into O(1).  Values are marked read-only: callers only ever add
# or index them, never mutate.

_MASK_MEMO: dict[tuple[int, int], np.ndarray] = {}
#: Cap the memo by *bytes*, not entries: one full-prompt prefill mask is
#: O(L^2) float32 (a 1024-position mask is ~4 MB), so an entry cap
#: alone could pin hundreds of MB across varied prompt lengths.
_MASK_MEMO_MAX_BYTES = 32 * 1024 * 1024
_MASK_MEMO_BYTES = 0

_CHUNK_POS_MEMO: tuple[tuple, np.ndarray] | None = None


def history_mask(start: int, new_len: int) -> np.ndarray | None:
    """Additive causal mask for queries at ``[start, start + new_len)``.

    The history spans ``start + new_len`` cached positions (the query
    rows' own positions included).  Returns ``None`` when the mask
    would be all zeros — the single-token decode case — because adding
    a zero mask is a bitwise no-op through the softmax (``exp`` maps
    ``-0.0`` and ``+0.0`` to the same ``1.0``) and skipping it saves
    one (batch, heads, 1, total) allocation per request per layer.
    """
    if new_len <= 1:
        return None
    global _MASK_MEMO_BYTES
    key = (start, new_len)
    mask = _MASK_MEMO.get(key)
    if mask is None:
        total = start + new_len
        positions = np.arange(start, total)[:, None]
        history = np.arange(total)[None, :]
        mask = np.where(history > positions, MASK_VALUE, 0.0).astype(np.float32)
        mask.setflags(write=False)
        if _MASK_MEMO_BYTES + mask.nbytes > _MASK_MEMO_MAX_BYTES:
            _MASK_MEMO.clear()
            _MASK_MEMO_BYTES = 0
        _MASK_MEMO[key] = mask
        _MASK_MEMO_BYTES += mask.nbytes
    return mask


def chunk_positions(starts: list[int], lengths: list[int]) -> np.ndarray:
    """Flattened per-segment position ids for a mixed step's chunk lane.

    Memoized single-slot: all layers of one forward pass (and the
    position-embedding lookup before them) share identical
    ``(starts, lengths)``, so the concatenated arange is built once per
    pass instead of once per layer.
    """
    global _CHUNK_POS_MEMO
    key = (tuple(starts), tuple(lengths))
    memo = _CHUNK_POS_MEMO
    if memo is not None and memo[0] == key:
        return memo[1]
    positions = np.concatenate(
        [np.arange(start, start + length) for start, length in zip(starts, lengths)]
    )
    positions.setflags(write=False)
    _CHUNK_POS_MEMO = (key, positions)
    return positions


_CONTEXT_SCRATCH: dict[tuple, np.ndarray] = {}
_CONTEXT_SCRATCH_CAP = 8


def _context_scratch(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    """Reusable attention-context buffer for one step shape.

    ``step_batch`` / ``step_mixed`` previously concatenated per-request
    context slices into a fresh array every layer; writing the slices
    into a per-shape scratch reuses one allocation across all layers of
    a step (the downstream transpose+reshape copies out of it before
    the next layer runs).  The dtype is the attention core's own output
    dtype — the scores pipeline runs in float64 (the float64 ``scale``
    scalar promotes it), and storing the context any narrower would
    round it before the output projection, breaking bitwise parity
    with the unbatched ``step`` path.
    """
    key = (shape, dtype)
    scratch = _CONTEXT_SCRATCH.get(key)
    if scratch is None:
        if len(_CONTEXT_SCRATCH) >= _CONTEXT_SCRATCH_CAP:
            _CONTEXT_SCRATCH.clear()
        scratch = np.empty(shape, dtype=dtype)
        _CONTEXT_SCRATCH[key] = scratch
    return scratch


_ROTARY_BUILD_MEMO: dict[tuple[int, int, float], "RotaryTable"] = {}
_ROTARY_BUILD_MEMO_CAP = 32


@dataclass
class RotaryTable:
    """Precomputed cos/sin tables for rotary position embeddings.

    Tables are pure functions of ``(head_dim, max_len, base)``, so
    :meth:`build` memoizes them — every attention layer of a model
    (and equal-geometry models in one process) shares a single
    instance, which is what lets :meth:`gather` keep a one-slot memo
    that hits for layers 2..L of each forward pass.  Instances are
    immutable by convention: ``cos``/``sin`` are never written after
    construction.
    """

    cos: np.ndarray
    sin: np.ndarray
    _gather_memo: tuple[tuple, np.ndarray, np.ndarray] | None = field(
        default=None, repr=False
    )

    @classmethod
    def build(cls, head_dim: int, max_len: int, base: float = 10000.0) -> "RotaryTable":
        key = (head_dim, max_len, base)
        table = _ROTARY_BUILD_MEMO.get(key)
        if table is not None:
            return table
        half = head_dim // 2
        freqs = base ** (-np.arange(0, half, dtype=np.float64) / half)
        angles = np.outer(np.arange(max_len, dtype=np.float64), freqs)
        double = np.concatenate([angles, angles], axis=-1)
        cos = np.cos(double).astype(np.float32)
        sin = np.sin(double).astype(np.float32)
        # The instance is shared process-wide (and slice() hands out
        # views of it): freeze the tables so an in-place mutation by
        # any one caller cannot corrupt every other model.
        cos.setflags(write=False)
        sin.setflags(write=False)
        table = cls(cos=cos, sin=sin)
        if len(_ROTARY_BUILD_MEMO) >= _ROTARY_BUILD_MEMO_CAP:
            _ROTARY_BUILD_MEMO.clear()
        _ROTARY_BUILD_MEMO[key] = table
        return table

    def slice(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        if stop > self.cos.shape[0]:
            raise ModelError(
                f"rotary table holds {self.cos.shape[0]} positions, "
                f"requested up to {stop}"
            )
        return self.cos[start:stop], self.sin[start:stop]

    def gather(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-request cos/sin rows for arbitrary (unsorted) positions.

        One-slot memo: every layer of a forward pass gathers the same
        positions, so the fancy-index copy runs once per pass instead
        of once per layer (the table instance is shared via
        :meth:`build`'s memo).
        """
        key = (positions.tobytes(), positions.dtype.str, positions.shape)
        memo = self._gather_memo
        if memo is not None and memo[0] == key:
            return memo[1], memo[2]
        limit = int(positions.max(initial=0)) + 1
        if limit > self.cos.shape[0]:
            raise ModelError(
                f"rotary table holds {self.cos.shape[0]} positions, "
                f"requested up to {limit}"
            )
        cos_rows = self.cos[positions]
        sin_rows = self.sin[positions]
        cos_rows.setflags(write=False)
        sin_rows.setflags(write=False)
        self._gather_memo = (key, cos_rows, sin_rows)
        return cos_rows, sin_rows


def _rotate_half(x: Tensor) -> Tensor:
    half = x.shape[-1] // 2
    front = x[..., :half]
    back = x[..., half:]
    return concat([-back, front], axis=-1)


def apply_rotary(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotate (batch, heads, time, head_dim) queries/keys by position."""
    return x * Tensor(cos) + _rotate_half(x) * Tensor(sin)


def _rotate_half_np(x: np.ndarray) -> np.ndarray:
    half = x.shape[-1] // 2
    return np.concatenate([-x[..., half:], x[..., :half]], axis=-1)


#: Smallest time-axis capacity a cache buffer is allocated with; single
#: -token decode growth doubles from here instead of reallocating at
#: every one of the first appends.
_INITIAL_CAPACITY = 16

#: Monotonic id source for cache identity (see :attr:`KVCache.uid`).
_CACHE_UID_COUNTER = itertools.count()


class KVCache:
    """Per-layer key/value history for incremental decoding (FP16).

    Two subclass seams keep every cache variant on one append path:

    * **compression** — :meth:`compress` (a row-local transform applied
      on write) and :meth:`compression_key`; the batched decode path
      uses those to compress a whole batch's K/V in one call and then
      append per request via :meth:`append_precompressed`.
    * **storage** — :meth:`_store` (persist float16 rows) and
      :meth:`view` (return the full float32 history).  The paged
      subclass (:class:`repro.serve.kvpool.paged.PagedKVCache`)
      scatters rows into pool blocks on write and gathers the
      non-contiguous blocks on read.  Because both store the same
      float16 bytes, the two are bitwise interchangeable under
      ``step`` / ``step_batch``.

    Storage here is the decode hot path, so per-step cost must be
    proportional to *new* tokens, not history length:

    * float16 rows land in preallocated, capacity-doubling buffers
      with a logical length (``_len``) — appending a token is one row
      write, and buffer-growth copies amortize to O(1) per token;
    * :meth:`view` keeps a memoized float32 twin of the storage and
      dequantizes only the tail appended since the last call,
      returning zero-copy slices of it.  The memo is invalidated if
      :meth:`compression_key` ever changes (defensive — compression is
      applied at write time, so stored bytes never change under it).

    Both choices are bitwise-invisible: stored float16 bytes are
    identical to the old concatenate storage, float16 -> float32
    conversion is exact, and numpy matmuls buffer strided views to
    contiguous memory before BLAS sees them.
    :class:`ReferenceKVCache` keeps the O(history)-per-step storage
    alive as the parity oracle the growth property tests and the
    decode hot-path benchmark compare against.
    """

    __slots__ = (
        "_k16",
        "_v16",
        "_len",
        "_deq_k",
        "_deq_v",
        "_deq_len",
        "_deq_key",
        "_uid",
    )

    def __init__(self) -> None:
        self._k16: np.ndarray | None = None
        self._v16: np.ndarray | None = None
        self._len = 0
        self._deq_k: np.ndarray | None = None
        self._deq_v: np.ndarray | None = None
        self._deq_len = 0
        self._deq_key: tuple | None = None
        self._uid = next(_CACHE_UID_COUNTER)

    @property
    def uid(self) -> int:
        """Process-unique cache identity, stable for the cache's lifetime.

        :class:`BucketedAttention` keys its per-bucket gather
        workspaces on member uid tuples, so a workspace is reused (and
        synced incrementally) exactly as long as the same cache objects
        stay grouped together, and can never be confused with a new
        cache that reuses the same memory address.
        """
        return self._uid

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        """Write-side transform; must be row-local along leading axes."""
        return tensor

    def compression_key(self) -> tuple:
        """Caches with equal keys share one batched compress call."""
        return ("fp16",)

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.append_precompressed(self.compress(k), self.compress(v))

    def append_precompressed(
        self, k: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append K/V already passed through :meth:`compress`."""
        self._store(k.astype(np.float16), v.astype(np.float16))
        return self.view()

    @property
    def keys(self) -> np.ndarray | None:
        """Stored float16 keys ``(batch, heads, length, hd)`` (a view)."""
        return None if self._k16 is None else self._k16[:, :, : self._len]

    @property
    def values(self) -> np.ndarray | None:
        """Stored float16 values ``(batch, heads, length, hd)`` (a view)."""
        return None if self._v16 is None else self._v16[:, :, : self._len]

    def _store(self, k16: np.ndarray, v16: np.ndarray) -> None:
        """Persist new float16 rows into the preallocated buffers."""
        new_len = k16.shape[2]
        end = self._len + new_len
        if self._k16 is None:
            shape = list(k16.shape)
            shape[2] = max(new_len, _INITIAL_CAPACITY)
            self._k16 = np.empty(shape, dtype=np.float16)
            self._v16 = np.empty(shape, dtype=np.float16)
        elif end > self._k16.shape[2]:
            capacity = self._k16.shape[2]
            while capacity < end:
                capacity *= 2
            shape = list(self._k16.shape)
            shape[2] = capacity
            grown = tuple(shape)
            self._k16 = grow_buffer(self._k16, grown, 2, self._len, np.float16)
            self._v16 = grow_buffer(self._v16, grown, 2, self._len, np.float16)
        self._k16[:, :, self._len : end] = k16
        self._v16[:, :, self._len : end] = v16
        self._len = end

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """Full cached history as float32 ``(batch, heads, time, hd)``.

        Memoized: only positions appended since the last call are
        converted; the returned arrays are read-mostly slices of the
        persistent float32 buffers (valid until the next append forces
        a growth reallocation, i.e. for the current layer step).
        """
        if self._len == 0 or self._k16 is None:
            raise ModelError("view() on an empty KV cache")
        key = self.compression_key()
        if self._deq_key is not None and self._deq_key != key:
            self._deq_len = 0  # compression changed: re-dequantize
        self._deq_key = key
        capacity = self._k16.shape[2]
        if self._deq_k is None or self._deq_k.shape[2] != capacity:
            shape = tuple(self._k16.shape)
            self._deq_k = grow_buffer(self._deq_k, shape, 2, self._deq_len, np.float32)
            self._deq_v = grow_buffer(self._deq_v, shape, 2, self._deq_len, np.float32)
        if self._deq_len < self._len:
            tail = slice(self._deq_len, self._len)
            self._deq_k[:, :, tail] = self._k16[:, :, tail]
            self._deq_v[:, :, tail] = self._v16[:, :, tail]
            _ACTIVE_SCOPE.get().hot.dequant_bytes += (
                2 * self._deq_k[:, :, tail].nbytes
            )
            self._deq_len = self._len
        keys = self._deq_k[:, :, : self._len]
        values = self._deq_v[:, :, : self._len]
        # The old view() returned private copies; these alias the
        # persistent buffers, so hand out read-only views (the buffers
        # themselves stay writable for the next tail dequant).
        keys.setflags(write=False)
        values.setflags(write=False)
        return keys, values

    @property
    def length(self) -> int:
        return self._len

    def truncate(self, length: int) -> None:
        """Roll the cache back to ``length`` stored positions.

        The engine's batch-level fault rollback: positions beyond
        ``length`` are logically dropped (the preallocated buffers keep
        their capacity) and the float32 memo is clamped so the next
        :meth:`view` re-dequantizes nothing stale.  Re-appending the
        same rows afterwards reproduces the pre-truncation bytes
        exactly.
        """
        if not 0 <= length <= self._len:
            raise ModelError(
                f"truncate({length}) outside stored length {self._len}"
            )
        self._len = length
        self._deq_len = min(self._deq_len, length)


class ReferenceKVCache(KVCache):
    """The pre-optimization O(history)-per-step storage, kept as oracle.

    Appends by whole-array concatenate and dequantizes the full
    history on every :meth:`view` — exactly what :class:`KVCache` did
    before preallocated buffers and incremental views.  The growth
    property tests pin the optimized storage bitwise against this, and
    ``benchmarks/bench_decode_hotpath.py`` measures the step-latency
    gap.  An optional ``codec`` delegates the write-side compression,
    so one reference class covers FP16 and Anda storage.
    """

    __slots__ = ("_codec", "_ref_k", "_ref_v")

    def __init__(self, codec: KVCache | None = None) -> None:
        super().__init__()
        self._codec = codec
        self._ref_k: np.ndarray | None = None
        self._ref_v: np.ndarray | None = None

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        return tensor if self._codec is None else self._codec.compress(tensor)

    def compression_key(self) -> tuple:
        return ("fp16",) if self._codec is None else self._codec.compression_key()

    @property
    def keys(self) -> np.ndarray | None:
        return self._ref_k

    @property
    def values(self) -> np.ndarray | None:
        return self._ref_v

    def _store(self, k16: np.ndarray, v16: np.ndarray) -> None:
        if self._ref_k is None:
            self._ref_k, self._ref_v = k16, v16
        else:
            self._ref_k = np.concatenate([self._ref_k, k16], axis=2)
            self._ref_v = np.concatenate([self._ref_v, v16], axis=2)
            _ACTIVE_SCOPE.get().hot.copy_bytes += (
                self._ref_k.nbytes + self._ref_v.nbytes
            )

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        if self._ref_k is None:
            raise ModelError("view() on an empty KV cache")
        keys = self._ref_k.astype(np.float32)
        values = self._ref_v.astype(np.float32)
        _ACTIVE_SCOPE.get().hot.dequant_bytes += keys.nbytes + values.nbytes
        return keys, values

    @property
    def length(self) -> int:
        return 0 if self._ref_k is None else self._ref_k.shape[2]

    def truncate(self, length: int) -> None:
        if not 0 <= length <= self.length:
            raise ModelError(
                f"truncate({length}) outside stored length {self.length}"
            )
        if self._ref_k is not None:
            if length == 0:
                self._ref_k = None
                self._ref_v = None
            else:
                self._ref_k = self._ref_k[:, :, :length]
                self._ref_v = self._ref_v[:, :, :length]


# -- grouped batched attention ------------------------------------------------
#
# PackInfer-style KV-length bucketing for the decode lane: instead of
# one attention pipeline launch per (layer, request), requests whose
# histories share a KV length run as one batched launch per
# (layer, bucket).  Bitwise discipline mirrors the chunked-prefill lane
# rules: stacked numpy matmuls apply BLAS per leading-axis slice, so a
# fully batched exact-length bucket reproduces the per-request bits,
# while a bucket of size 1 stays on the M == 1 kernel path through
# ``_attention_core`` itself.  Padded buckets never feed padded
# operands to a matmul (BLAS edge kernels change bits when the reduced
# or written extent changes): per-member exact-length matmuls write
# into a shared padded scores workspace whose pad tail is MASK_VALUE,
# and only the alignment-insensitive elementwise softmax middle runs
# batched.


@dataclass(frozen=True, slots=True)
class Bucket:
    """One dispatch group: request rows sharing a (target) KV length.

    Attributes:
        indices: batch positions of the member requests.
        lengths: each member's exact KV length (post-append, i.e. the
            length attention reads), in ``indices`` order.
        length: the bucket's target KV length — ``max(lengths)``; the
            padded scores extent for mixed-length buckets.
    """

    indices: tuple[int, ...]
    lengths: tuple[int, ...]
    length: int

    @property
    def size(self) -> int:
        return len(self.indices)

    @property
    def padded(self) -> bool:
        return any(length != self.length for length in self.lengths)

    @property
    def padded_slots(self) -> int:
        """Wasted key positions scored: ``sum(target - member length)``."""
        return sum(self.length - length for length in self.lengths)


@dataclass(frozen=True, slots=True)
class BucketPlan:
    """One decode step's bucket assignment (shared by every layer)."""

    buckets: tuple[Bucket, ...]

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    @property
    def grouped_requests(self) -> int:
        return sum(bucket.size for bucket in self.buckets if bucket.size > 1)

    @property
    def padded_slots(self) -> int:
        return sum(bucket.padded_slots for bucket in self.buckets)


def plan_buckets(lengths: list[int], pad_waste_cap: float = 0.125) -> BucketPlan:
    """Group request rows by KV length into dispatch buckets.

    Exact-length groups come first: every length shared by >= 2
    requests becomes one unpadded bucket (the fully batched fast
    path).  Leftover singletons are then greedily merged, longest
    first, into padded buckets as long as the padded fraction
    ``padded_slots / (size * target)`` stays within ``pad_waste_cap``
    — the knob trading fewer dispatches against wasted key reads.
    Whatever still stands alone stays a singleton bucket, which the
    dispatcher routes through the per-request oracle so it keeps the
    M == 1 kernel path (and its bitwise guarantee) untouched.

    The plan depends only on the lengths, so one plan per step serves
    every layer.
    """
    if not 0.0 <= pad_waste_cap < 1.0:
        raise ModelError(f"pad_waste_cap must lie in [0, 1), got {pad_waste_cap}")
    groups: dict[int, list[int]] = {}
    for index, length in enumerate(lengths):
        if length < 1:
            raise ModelError(f"request {index} has KV length {length}")
        groups.setdefault(length, []).append(index)

    buckets: list[Bucket] = []
    singles: list[tuple[int, int]] = []
    for length, indices in groups.items():
        if len(indices) >= 2:
            buckets.append(
                Bucket(
                    indices=tuple(indices),
                    lengths=(length,) * len(indices),
                    length=length,
                )
            )
        else:
            singles.append((length, indices[0]))

    singles.sort(reverse=True)
    pending: list[tuple[int, int]] = []

    def close(members: list[tuple[int, int]]) -> None:
        if not members:
            return
        target = members[0][0]
        buckets.append(
            Bucket(
                indices=tuple(index for _, index in members),
                lengths=tuple(length for length, _ in members),
                length=target,
            )
        )

    for length, index in singles:
        if not pending:
            pending = [(length, index)]
            continue
        target = pending[0][0]
        candidate = pending + [(length, index)]
        waste = sum(target - member_len for member_len, _ in candidate)
        if pad_waste_cap > 0.0 and waste <= pad_waste_cap * len(candidate) * target:
            pending = candidate
        else:
            close(pending)
            pending = [(length, index)]
    close(pending)
    return BucketPlan(buckets=tuple(buckets))


class _BucketWorkspace:
    """Persistent K/V gather buffers for one bucket membership.

    ``keys`` stays float32 — the scores matmul must run in float32 and
    be upcast by the float64 scale afterwards, exactly as the oracle
    does, or the bits change.  ``values`` is stored float64: numpy
    promotes the mixed ``float64 weights @ float32 values`` context
    matmul to float64 before BLAS sees it, so pre-promoting into the
    workspace is bitwise invisible — and it turns a pathologically slow
    batched mixed-dtype matmul (a fresh O(bucket * len) cast per layer
    per step) into a straight dgemm over persistent memory.

    ``synced`` is the shared dequant watermark: exact buckets hold
    equal-length members, and a workspace is only ever reused by the
    identical member tuple, so one integer tracks all members.
    """

    __slots__ = ("keys", "values", "synced")

    def __init__(self) -> None:
        self.keys: np.ndarray | None = None
        self.values: np.ndarray | None = None
        self.synced = 0


class BucketedAttention:
    """KV-length-bucketed decode dispatcher (one instance per engine).

    Owns the bucket planning policy (:meth:`plan` wraps
    :func:`plan_buckets` with the configured pad-waste cap) and the
    per-bucket gather workspaces.  Workspaces are keyed by the member
    caches' uid tuples: as long as the same requests stay bucketed
    together — the steady decode state — each step's sync copies only
    the tail appended since the last step (O(new tokens), preserving
    the hot-path contract), and a membership change simply starts a
    fresh workspace.  The caches are assumed append-only, as on the
    engine path; rewriting stored history through direct ``write()``
    calls would require a new cache (new uid) to stay coherent.

    Composes with both storage backends by construction: it reads
    histories only through ``cache.view()``'s float32
    ``(1, H, len, hd)`` contract, which unpaged :class:`KVCache` and
    the paged gather scratch both satisfy.
    """

    def __init__(self, pad_waste_cap: float = 0.125, max_workspaces: int = 32) -> None:
        if not 0.0 <= pad_waste_cap < 1.0:
            raise ModelError(f"pad_waste_cap must lie in [0, 1), got {pad_waste_cap}")
        if max_workspaces < 1:
            raise ModelError(f"max_workspaces must be positive, got {max_workspaces}")
        self.pad_waste_cap = pad_waste_cap
        self._max_workspaces = max_workspaces
        self._workspaces: dict[tuple[int, ...], _BucketWorkspace] = {}

    def plan(self, lengths: list[int]) -> BucketPlan:
        """Bucket assignment for one decode step's post-append lengths."""
        return plan_buckets(lengths, self.pad_waste_cap)

    def run_bucket(
        self,
        attention: "MultiHeadAttention",
        bucket: Bucket,
        q: np.ndarray,
        views: list[tuple[np.ndarray, np.ndarray]],
        caches: list["KVCache"],
    ) -> np.ndarray:
        """Attention context rows ``(bucket, H, 1, hd)`` for one bucket.

        Singleton buckets fall through to the per-request oracle so
        their rows stay on the M == 1 kernel path, bitwise identical
        to sequential decode.
        """
        for slot, index in enumerate(bucket.indices):
            have = views[index][0].shape[2]
            if have != bucket.lengths[slot]:
                raise ModelError(
                    f"bucket expects request {index} at KV length "
                    f"{bucket.lengths[slot]}, cache holds {have}"
                )
        if bucket.size == 1:
            index = bucket.indices[0]
            keys, values = views[index]
            return attention._attention_core(
                q[index : index + 1], keys, values, bucket.length - 1
            )
        scope = _ACTIVE_SCOPE.get()
        stats = scope.attention
        stats.dispatches += 1
        stats.grouped_requests += bucket.size
        if bucket.padded:
            stats.padded_slots += bucket.padded_slots
        tracer = scope.tracer
        if tracer is None:
            if bucket.padded:
                return self._run_padded(attention, bucket, q, views)
            return self._run_exact(attention, bucket, q, views, caches)
        with tracer.span(
            "decode.attention",
            size=bucket.size,
            kv_length=bucket.length,
            padded=bucket.padded,
        ):
            if bucket.padded:
                return self._run_padded(attention, bucket, q, views)
            return self._run_exact(attention, bucket, q, views, caches)

    # -- exact-length buckets ---------------------------------------------

    def _workspace(
        self,
        bucket: Bucket,
        views: list[tuple[np.ndarray, np.ndarray]],
        caches: list["KVCache"],
    ) -> _BucketWorkspace:
        """Sync (incrementally) and return the bucket's gather workspace."""
        key = tuple(caches[index].uid for index in bucket.indices)
        length = bucket.length
        workspace = self._workspaces.get(key)
        if workspace is None:
            if len(self._workspaces) >= self._max_workspaces:
                self._workspaces.clear()
            workspace = _BucketWorkspace()
            self._workspaces[key] = workspace
        if workspace.synced > length:
            # History shrank under us (direct write() rollback): the
            # cached prefix can no longer be trusted.
            workspace.synced = 0
        if workspace.keys is None or workspace.keys.shape[2] < length:
            capacity = max(
                length,
                _INITIAL_CAPACITY,
                2 * (0 if workspace.keys is None else workspace.keys.shape[2]),
            )
            heads, head_dim = views[bucket.indices[0]][0].shape[1], views[
                bucket.indices[0]
            ][0].shape[3]
            shape = (bucket.size, heads, capacity, head_dim)
            workspace.keys = grow_buffer(
                workspace.keys, shape, 2, workspace.synced, np.float32
            )
            workspace.values = grow_buffer(
                workspace.values, shape, 2, workspace.synced, np.float64
            )
        if workspace.synced < length:
            tail = slice(workspace.synced, length)
            for slot, index in enumerate(bucket.indices):
                keys, values = views[index]
                workspace.keys[slot, :, tail] = keys[0, :, tail]
                workspace.values[slot, :, tail] = values[0, :, tail]
            _ACTIVE_SCOPE.get().hot.copy_bytes += bucket.size * (
                workspace.keys[0, :, tail].nbytes + workspace.values[0, :, tail].nbytes
            )
            workspace.synced = length
        return workspace

    def _run_exact(
        self,
        attention: "MultiHeadAttention",
        bucket: Bucket,
        q: np.ndarray,
        views: list[tuple[np.ndarray, np.ndarray]],
        caches: list["KVCache"],
    ) -> np.ndarray:
        """Fully batched attention over equal-length histories.

        One stacked pipeline — scores matmul, max, exp, sum, divide,
        context matmul — over ``(bucket, H, ...)`` operands.  numpy
        runs BLAS per leading-axis slice and every elementwise /
        reduction op is row-local with an unchanged reduced extent, so
        each row's bits match the per-request oracle exactly (verified
        by the singleton/padded parity tests and the benchmark gate).
        """
        workspace = self._workspace(bucket, views, caches)
        length = bucket.length
        keys = workspace.keys[:, :, :length]
        values = workspace.values[:, :, :length]
        q_rows = q[list(bucket.indices)]
        scores = (q_rows @ keys.swapaxes(-1, -2)) * attention.scale
        scores -= scores.max(axis=-1, keepdims=True)
        weights = np.exp(scores)
        weights /= weights.sum(axis=-1, keepdims=True)
        return weights @ values

    # -- padded buckets ----------------------------------------------------

    def _run_padded(
        self,
        attention: "MultiHeadAttention",
        bucket: Bucket,
        q: np.ndarray,
        views: list[tuple[np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        """Padded masked attention over near-equal-length histories.

        Matmuls and sums run per member at the member's *exact* length
        — padding an operand fed to BLAS, or widening a reduction,
        changes bits at unaligned lengths — while the shared padded
        scores workspace lets the elementwise softmax middle (max /
        subtract / exp / divide, all row-local) run batched.  Pad
        columns are assigned ``MASK_VALUE`` directly (never computed),
        so ``exp`` maps them to 0.0 and they influence nothing; the
        per-member sum reads only real columns regardless.
        """
        size, target = bucket.size, bucket.length
        heads, head_dim = attention.n_heads, attention.head_dim
        scores = np.empty((size, heads, 1, target))
        for slot, (index, length) in enumerate(zip(bucket.indices, bucket.lengths)):
            keys = views[index][0]
            row = (q[index : index + 1] @ keys.swapaxes(-1, -2)) * attention.scale
            scores[slot, :, :, :length] = row[0]
            scores[slot, :, :, length:] = MASK_VALUE
        scores -= scores.max(axis=-1, keepdims=True)
        weights = np.exp(scores)
        denominators = np.empty((size, heads, 1, 1))
        for slot, length in enumerate(bucket.lengths):
            denominators[slot] = weights[slot, :, :, :length].sum(
                axis=-1, keepdims=True
            )
        weights /= denominators
        context = np.empty((size, heads, 1, head_dim))
        for slot, (index, length) in enumerate(zip(bucket.indices, bucket.lengths)):
            values = views[index][1]
            context[slot] = (weights[slot : slot + 1, :, :, :length] @ values)[0]
        return context


class MultiHeadAttention(Module):
    """Fused-QKV causal attention with activation taps."""

    def __init__(
        self, config: ModelConfig, tap: ActivationTap, rng: np.random.Generator
    ) -> None:
        bias = config.family == "opt"
        self.qkv_proj = Linear(config.d_model, 3 * config.d_model, rng, bias=bias)
        self.out_proj = Linear(config.d_model, config.d_model, rng, bias=bias)
        self.n_heads = config.n_heads
        self.head_dim = config.head_dim
        self.scale = 1.0 / np.sqrt(config.head_dim)
        self.tap = tap
        self.rotary = (
            RotaryTable.build(config.head_dim, config.max_seq_len)
            if config.family == "llama"
            else None
        )

    # -- training / prefill path ----------------------------------------

    def __call__(self, x: Tensor) -> Tensor:
        batch, length, d_model = x.shape
        x = self.tap.apply(TensorKind.QKV, x)
        qkv = self.qkv_proj(x)  # (B, T, 3D)
        qkv = qkv.reshape(batch, length, 3, self.n_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        if self.rotary is not None:
            cos, sin = self.rotary.slice(0, length)
            q = apply_rotary(q, cos, sin)
            k = apply_rotary(k, cos, sin)

        scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale
        scores = scores + Tensor(causal_mask(length))
        weights = softmax(scores, axis=-1)
        context = weights @ v  # (B, H, T, hd)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, d_model)

        context = self.tap.apply(TensorKind.O, context)
        return self.out_proj(context)

    # -- incremental decode path ------------------------------------------

    def _project_qkv(self, x: np.ndarray) -> np.ndarray:
        """QKV-tap + fused projection: ``(B, T, D)`` -> ``(3, B, H, T, hd)``."""
        batch, new_len, _ = x.shape
        if self.tap.quantizer is not None:
            x = self.tap.quantizer(TensorKind.QKV, x)
        qkv = x @ self.qkv_proj.weight.data
        if self.qkv_proj.bias is not None:
            qkv = qkv + self.qkv_proj.bias.data
        qkv = qkv.reshape(batch, new_len, 3, self.n_heads, self.head_dim)
        return qkv.transpose(2, 0, 3, 1, 4)

    def _attention_core(
        self, q: np.ndarray, keys: np.ndarray, values: np.ndarray, start: int
    ) -> np.ndarray:
        """Masked softmax attention over one request's exact history.

        ``q`` is ``(batch, heads, new, head_dim)``; ``keys``/``values``
        hold ``start + new`` cached positions.  No padding is involved:
        scores span exactly the request's history, which is what makes
        batched decode token-identical to sequential decode.
        """
        new_len = q.shape[2]
        _ACTIVE_SCOPE.get().attention.dispatches += 1
        scores = (q @ keys.swapaxes(-1, -2)) * self.scale
        mask = history_mask(start, new_len)
        if mask is not None:
            scores = scores + mask
        scores -= scores.max(axis=-1, keepdims=True)
        weights_np = np.exp(scores)
        weights_np /= weights_np.sum(axis=-1, keepdims=True)
        return weights_np @ values

    def _project_out(self, context: np.ndarray) -> np.ndarray:
        """O-tap + output projection for ``(B, T, D)`` attention context."""
        if self.tap.quantizer is not None:
            context = self.tap.quantizer(TensorKind.O, context)
        out = context @ self.out_proj.weight.data
        if self.out_proj.bias is not None:
            out = out + self.out_proj.bias.data
        return out.astype(np.float32)

    def step(self, x: np.ndarray, cache: KVCache) -> np.ndarray:
        """Process new tokens with cached history (plain numpy).

        Args:
            x: ``(batch, new_tokens, d_model)`` activations.
            cache: layer cache; extended in place.
        """
        batch, new_len, d_model = x.shape
        start = cache.length
        qkv = self._project_qkv(x)
        q, k, v = qkv[0], qkv[1], qkv[2]

        if self.rotary is not None:
            cos, sin = self.rotary.slice(start, start + new_len)
            q = q * cos + _rotate_half_np(q) * sin
            k = k * cos + _rotate_half_np(k) * sin

        keys, values = cache.append(k, v)
        context = self._attention_core(q, keys, values, start)
        context = context.transpose(0, 2, 1, 3).reshape(batch, new_len, d_model)
        return self._project_out(context)

    def step_batch(
        self,
        x: np.ndarray,
        caches: list[KVCache],
        plan: BucketPlan | None = None,
        dispatcher: BucketedAttention | None = None,
    ) -> np.ndarray:
        """Single-token decode for many independent requests at once.

        The projections (QKV, output) run as one batched ``(B, 1, D)``
        GeMM — numpy applies them per leading-axis slice, so each row is
        bitwise identical to a ``batch=1`` :meth:`step` call.  Each
        request may sit at a different position; rotary/positional
        phases are gathered per request.

        Attention itself runs in one of two modes, both token-bitwise
        identical to sequential decode:

        * **per request** (``plan is None``): one
          :meth:`_attention_core` call per request against that
          request's exact-length cache — O(batch) dispatches per layer.
        * **grouped** (``plan`` + ``dispatcher`` given): appends and
          views are collected first, then each :class:`Bucket` of the
          plan runs as one batched launch — O(buckets) dispatches per
          layer (singleton buckets still route through the oracle to
          stay on the M == 1 kernel path).

        Args:
            x: ``(batch, 1, d_model)`` activations, one row per request.
            caches: one :class:`KVCache` per request for *this* layer,
                each extended in place.
            plan: the step's bucket assignment (computed once from the
                post-append lengths, shared across layers).
            dispatcher: the engine's :class:`BucketedAttention`.
        """
        batch, new_len, d_model = x.shape
        if new_len != 1:
            raise ModelError(f"step_batch decodes one token per request, got {new_len}")
        if len(caches) != batch:
            raise ModelError(
                f"got {len(caches)} caches for a batch of {batch} requests"
            )
        starts = np.array([cache.length for cache in caches])
        qkv = self._project_qkv(x)
        q, k, v = qkv[0], qkv[1], qkv[2]  # (B, H, 1, hd)

        if self.rotary is not None:
            cos, sin = self.rotary.gather(starts)
            cos = cos[:, None, None, :]  # (B, 1, 1, hd) -> broadcasts over heads
            sin = sin[:, None, None, :]
            q = q * cos + _rotate_half_np(q) * sin
            k = k * cos + _rotate_half_np(k) * sin

        # Group the batch by compression scheme and compress each
        # group's K *and* V in a single stacked call per scheme — the
        # transform is row-local along leading axes, so this is
        # bitwise identical to the per-request, per-tensor compress
        # inside append() while paying the codec's fixed overhead once
        # per (layer, scheme) instead of 2x batch times.  A uniform
        # batch (the engine's common case) degenerates to exactly one
        # stacked call over the whole k/v arrays; fp16 rows are the
        # identity and skip the stack entirely.  Afterwards every row
        # holds its stored form, so the append loops below always take
        # the precompressed path.
        groups: dict[tuple, list[int]] = {}
        for index, cache in enumerate(caches):
            key = cache.compression_key()
            if key != ("fp16",):
                groups.setdefault(key, []).append(index)
        if groups:
            tracer = _ACTIVE_SCOPE.get().tracer
            span = (
                nullcontext()
                if tracer is None
                else tracer.span("decode.codec", batch=batch)
            )
            with span:
                for indices in groups.values():
                    n = len(indices)
                    if n == batch:
                        stacked = caches[indices[0]].compress(
                            np.concatenate([k, v], axis=0)
                        )
                        k = stacked[:n]
                        v = stacked[n:]
                    else:
                        stacked = caches[indices[0]].compress(
                            np.concatenate([k[indices], v[indices]], axis=0)
                        )
                        k[indices] = stacked[:n]
                        v[indices] = stacked[n:]
        precompressed = True

        if plan is not None and dispatcher is not None:
            # Grouped mode: land every request's append first (views of
            # one request's cache are never invalidated by another
            # request's append — per-request buffers, or per-sequence
            # gather scratch in the paged pool), then launch once per
            # bucket.
            views: list[tuple[np.ndarray, np.ndarray]] = []
            for index, cache in enumerate(caches):
                k_row = k[index : index + 1]
                v_row = v[index : index + 1]
                if precompressed:
                    views.append(cache.append_precompressed(k_row, v_row))
                else:
                    views.append(cache.append(k_row, v_row))
            context: np.ndarray | None = None
            for bucket in plan.buckets:
                rows = dispatcher.run_bucket(self, bucket, q, views, caches)
                if context is None:
                    context = _context_scratch((batch,) + rows.shape[1:], rows.dtype)
                for slot, index in enumerate(bucket.indices):
                    context[index] = rows[slot]
            context = context.transpose(0, 2, 1, 3).reshape(batch, new_len, d_model)
            return self._project_out(context)

        # (B, H, 1, hd) scratch reused across the step's layers; the
        # transpose+reshape below hands a fresh copy (or a view consumed
        # before the next layer) to the output projection.
        context = None
        for index, cache in enumerate(caches):
            k_row = k[index : index + 1]
            v_row = v[index : index + 1]
            if precompressed:
                keys, values = cache.append_precompressed(k_row, v_row)
            else:
                keys, values = cache.append(k_row, v_row)
            row = self._attention_core(
                q[index : index + 1], keys, values, int(starts[index])
            )
            if context is None:
                context = _context_scratch((batch,) + row.shape[1:], row.dtype)
            context[index] = row[0]
        context = context.transpose(0, 2, 1, 3).reshape(batch, new_len, d_model)
        return self._project_out(context)

    def step_mixed(
        self, x: np.ndarray, caches: list[KVCache], lengths: list[int]
    ) -> np.ndarray:
        """Variable-length prompt segments for many requests at once.

        The chunk lane of a mixed step: prompt chunks — a budget-sized
        slice of a long prompt, or a whole short prompt — are
        flattened along the time axis into one ``(1, total, d_model)``
        array so the projections, norms and FFN run as a single GeMM
        over every prefill token in the step, while attention runs per
        segment against that request's exact-length cache.  A segment
        may start anywhere (``cache.length`` positions already
        cached): rotary phases are gathered per flattened position
        (:meth:`RotaryTable.gather`), and the causal mask spans
        ``cache_len + segment`` so chunk queries see the whole cached
        history plus their own prefix.  Because multi-row GeMM results
        are row-local (every ``M >= 2`` matmul kernel accumulates rows
        identically), each segment is bitwise identical to the same
        rows of a monolithic prefill — which is what makes chunked
        prefill token-identical to unchunked prefill.  Single-token
        decodes do *not* belong in this lane: OpenBLAS's ``M == 1``
        kernel accumulates differently, so the engine keeps decodes on
        :meth:`step_batch` to preserve their own bitwise guarantee.

        Args:
            x: ``(1, total, d_model)`` activations, segments
                concatenated in request order.
            caches: one :class:`KVCache` per segment for *this* layer,
                each extended in place by its segment's positions.
            lengths: per-segment token counts summing to ``total``.
        """
        batch, total, d_model = x.shape
        if batch != 1:
            raise ModelError(f"mixed steps flatten to batch 1, got {batch}")
        if sum(lengths) != total or min(lengths, default=0) < 1:
            raise ModelError(
                f"segment lengths {lengths} must be positive and sum to {total}"
            )
        if len(caches) != len(lengths):
            raise ModelError(f"got {len(caches)} caches for {len(lengths)} segments")
        starts = [cache.length for cache in caches]
        qkv = self._project_qkv(x)
        q, k, v = qkv[0], qkv[1], qkv[2]  # (1, H, total, hd)

        if self.rotary is not None:
            positions = chunk_positions(starts, lengths)
            cos, sin = self.rotary.gather(positions)  # (total, hd)
            q = q * cos + _rotate_half_np(q) * sin
            k = k * cos + _rotate_half_np(k) * sin

        # (1, H, total, hd) scratch reused across the step's layers.
        context: np.ndarray | None = None
        offset = 0
        for cache, start, length in zip(caches, starts, lengths):
            stop = offset + length
            keys, values = cache.append(k[:, :, offset:stop], v[:, :, offset:stop])
            segment = self._attention_core(q[:, :, offset:stop], keys, values, start)
            if context is None:
                context = _context_scratch(
                    (1, self.n_heads, total, self.head_dim), segment.dtype
                )
            context[:, :, offset:stop] = segment
            offset = stop
        context = context.transpose(0, 2, 1, 3).reshape(batch, total, d_model)
        return self._project_out(context)
