"""Causal multi-head self-attention with the A_qkv / A_o tap points.

One fused QKV projection consumes the (possibly quantized) ``A_qkv``
activation; the attention output consumes ``A_o`` before the output
projection.  LLaMA-family models apply rotary position embeddings to
queries and keys; OPT-family models rely on the model's learned position
embeddings instead.

Two forward paths are provided:

* :meth:`MultiHeadAttention.__call__` — autograd path used for training
  and whole-sequence (prefill) evaluation.
* :meth:`MultiHeadAttention.step` — plain-numpy incremental path with a
  KV cache, used by :mod:`repro.llm.generation` (the paper keeps the KV
  cache in FP16; so does this model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.precision import TensorKind
from repro.errors import ModelError
from repro.llm.autograd import Tensor, concat, softmax
from repro.llm.config import ModelConfig
from repro.llm.hooks import ActivationTap
from repro.llm.layers import Linear, Module

#: Additive mask value for future positions (large enough to zero the
#: softmax in float32 without producing NaN through inf - inf).
MASK_VALUE = -1e9


def causal_mask(length: int) -> np.ndarray:
    """Upper-triangular additive mask of shape (length, length)."""
    mask = np.zeros((length, length), dtype=np.float32)
    mask[np.triu_indices(length, k=1)] = MASK_VALUE
    return mask


@dataclass
class RotaryTable:
    """Precomputed cos/sin tables for rotary position embeddings."""

    cos: np.ndarray
    sin: np.ndarray

    @classmethod
    def build(cls, head_dim: int, max_len: int, base: float = 10000.0) -> "RotaryTable":
        half = head_dim // 2
        freqs = base ** (-np.arange(0, half, dtype=np.float64) / half)
        angles = np.outer(np.arange(max_len, dtype=np.float64), freqs)
        double = np.concatenate([angles, angles], axis=-1)
        return cls(
            cos=np.cos(double).astype(np.float32),
            sin=np.sin(double).astype(np.float32),
        )

    def slice(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        if stop > self.cos.shape[0]:
            raise ModelError(
                f"rotary table holds {self.cos.shape[0]} positions, "
                f"requested up to {stop}"
            )
        return self.cos[start:stop], self.sin[start:stop]

    def gather(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-request cos/sin rows for arbitrary (unsorted) positions."""
        limit = int(positions.max(initial=0)) + 1
        if limit > self.cos.shape[0]:
            raise ModelError(
                f"rotary table holds {self.cos.shape[0]} positions, "
                f"requested up to {limit}"
            )
        return self.cos[positions], self.sin[positions]


def _rotate_half(x: Tensor) -> Tensor:
    half = x.shape[-1] // 2
    front = x[..., :half]
    back = x[..., half:]
    return concat([-back, front], axis=-1)


def apply_rotary(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotate (batch, heads, time, head_dim) queries/keys by position."""
    return x * Tensor(cos) + _rotate_half(x) * Tensor(sin)


def _rotate_half_np(x: np.ndarray) -> np.ndarray:
    half = x.shape[-1] // 2
    return np.concatenate([-x[..., half:], x[..., :half]], axis=-1)


@dataclass
class KVCache:
    """Per-layer key/value history for incremental decoding (FP16).

    Two subclass seams keep every cache variant on one append path:

    * **compression** — :meth:`compress` (a row-local transform applied
      on write) and :meth:`compression_key`; the batched decode path
      uses those to compress a whole batch's K/V in one call and then
      append per request via :meth:`append_precompressed`.
    * **storage** — :meth:`_store` (persist float16 rows) and
      :meth:`view` (return the full float32 history).  This class keeps
      one contiguous array per tensor; the paged subclass
      (:class:`repro.serve.kvpool.paged.PagedKVCache`) scatters rows
      into pool blocks on write and gathers the non-contiguous blocks
      on read.  Because both store the same float16 bytes, the two are
      bitwise interchangeable under ``step`` / ``step_batch``.
    """

    keys: np.ndarray = field(default=None)  # type: ignore[assignment]
    values: np.ndarray = field(default=None)  # type: ignore[assignment]

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        """Write-side transform; must be row-local along leading axes."""
        return tensor

    def compression_key(self) -> tuple:
        """Caches with equal keys share one batched compress call."""
        return ("fp16",)

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.append_precompressed(self.compress(k), self.compress(v))

    def append_precompressed(
        self, k: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append K/V already passed through :meth:`compress`."""
        self._store(k.astype(np.float16), v.astype(np.float16))
        return self.view()

    def _store(self, k16: np.ndarray, v16: np.ndarray) -> None:
        """Persist new float16 rows (contiguous growth here)."""
        if self.keys is None:
            self.keys, self.values = k16, v16
        else:
            self.keys = np.concatenate([self.keys, k16], axis=2)
            self.values = np.concatenate([self.values, v16], axis=2)

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """Full cached history as float32 ``(batch, heads, time, hd)``."""
        return self.keys.astype(np.float32), self.values.astype(np.float32)

    @property
    def length(self) -> int:
        return 0 if self.keys is None else self.keys.shape[2]


class MultiHeadAttention(Module):
    """Fused-QKV causal attention with activation taps."""

    def __init__(
        self, config: ModelConfig, tap: ActivationTap, rng: np.random.Generator
    ) -> None:
        bias = config.family == "opt"
        self.qkv_proj = Linear(config.d_model, 3 * config.d_model, rng, bias=bias)
        self.out_proj = Linear(config.d_model, config.d_model, rng, bias=bias)
        self.n_heads = config.n_heads
        self.head_dim = config.head_dim
        self.scale = 1.0 / np.sqrt(config.head_dim)
        self.tap = tap
        self.rotary = (
            RotaryTable.build(config.head_dim, config.max_seq_len)
            if config.family == "llama"
            else None
        )

    # -- training / prefill path ----------------------------------------

    def __call__(self, x: Tensor) -> Tensor:
        batch, length, d_model = x.shape
        x = self.tap.apply(TensorKind.QKV, x)
        qkv = self.qkv_proj(x)  # (B, T, 3D)
        qkv = qkv.reshape(batch, length, 3, self.n_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        if self.rotary is not None:
            cos, sin = self.rotary.slice(0, length)
            q = apply_rotary(q, cos, sin)
            k = apply_rotary(k, cos, sin)

        scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale
        scores = scores + Tensor(causal_mask(length))
        weights = softmax(scores, axis=-1)
        context = weights @ v  # (B, H, T, hd)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, d_model)

        context = self.tap.apply(TensorKind.O, context)
        return self.out_proj(context)

    # -- incremental decode path ------------------------------------------

    def _project_qkv(self, x: np.ndarray) -> np.ndarray:
        """QKV-tap + fused projection: ``(B, T, D)`` -> ``(3, B, H, T, hd)``."""
        batch, new_len, _ = x.shape
        if self.tap.quantizer is not None:
            x = self.tap.quantizer(TensorKind.QKV, x)
        qkv = x @ self.qkv_proj.weight.data
        if self.qkv_proj.bias is not None:
            qkv = qkv + self.qkv_proj.bias.data
        qkv = qkv.reshape(batch, new_len, 3, self.n_heads, self.head_dim)
        return qkv.transpose(2, 0, 3, 1, 4)

    def _attention_core(
        self, q: np.ndarray, keys: np.ndarray, values: np.ndarray, start: int
    ) -> np.ndarray:
        """Masked softmax attention over one request's exact history.

        ``q`` is ``(batch, heads, new, head_dim)``; ``keys``/``values``
        hold ``start + new`` cached positions.  No padding is involved:
        scores span exactly the request's history, which is what makes
        batched decode token-identical to sequential decode.
        """
        new_len = q.shape[2]
        scores = (q @ keys.swapaxes(-1, -2)) * self.scale
        total = keys.shape[2]
        positions = np.arange(start, start + new_len)[:, None]
        history = np.arange(total)[None, :]
        scores = scores + np.where(history > positions, MASK_VALUE, 0.0).astype(
            np.float32
        )
        scores -= scores.max(axis=-1, keepdims=True)
        weights_np = np.exp(scores)
        weights_np /= weights_np.sum(axis=-1, keepdims=True)
        return weights_np @ values

    def _project_out(self, context: np.ndarray) -> np.ndarray:
        """O-tap + output projection for ``(B, T, D)`` attention context."""
        if self.tap.quantizer is not None:
            context = self.tap.quantizer(TensorKind.O, context)
        out = context @ self.out_proj.weight.data
        if self.out_proj.bias is not None:
            out = out + self.out_proj.bias.data
        return out.astype(np.float32)

    def step(self, x: np.ndarray, cache: KVCache) -> np.ndarray:
        """Process new tokens with cached history (plain numpy).

        Args:
            x: ``(batch, new_tokens, d_model)`` activations.
            cache: layer cache; extended in place.
        """
        batch, new_len, d_model = x.shape
        start = cache.length
        qkv = self._project_qkv(x)
        q, k, v = qkv[0], qkv[1], qkv[2]

        if self.rotary is not None:
            cos, sin = self.rotary.slice(start, start + new_len)
            q = q * cos + _rotate_half_np(q) * sin
            k = k * cos + _rotate_half_np(k) * sin

        keys, values = cache.append(k, v)
        context = self._attention_core(q, keys, values, start)
        context = context.transpose(0, 2, 1, 3).reshape(batch, new_len, d_model)
        return self._project_out(context)

    def step_batch(self, x: np.ndarray, caches: list[KVCache]) -> np.ndarray:
        """Single-token decode for many independent requests at once.

        The projections (QKV, output) run as one batched ``(B, 1, D)``
        GeMM — numpy applies them per leading-axis slice, so each row is
        bitwise identical to a ``batch=1`` :meth:`step` call — while
        attention itself runs per request against that request's
        *exact-length* cache (no cross-request padding).  Each request
        may sit at a different position; rotary/positional phases are
        gathered per request.

        Args:
            x: ``(batch, 1, d_model)`` activations, one row per request.
            caches: one :class:`KVCache` per request for *this* layer,
                each extended in place.
        """
        batch, new_len, d_model = x.shape
        if new_len != 1:
            raise ModelError(f"step_batch decodes one token per request, got {new_len}")
        if len(caches) != batch:
            raise ModelError(
                f"got {len(caches)} caches for a batch of {batch} requests"
            )
        starts = np.array([cache.length for cache in caches])
        qkv = self._project_qkv(x)
        q, k, v = qkv[0], qkv[1], qkv[2]  # (B, H, 1, hd)

        if self.rotary is not None:
            cos, sin = self.rotary.gather(starts)
            cos = cos[:, None, None, :]  # (B, 1, 1, hd) -> broadcasts over heads
            sin = sin[:, None, None, :]
            q = q * cos + _rotate_half_np(q) * sin
            k = k * cos + _rotate_half_np(k) * sin

        # When every cache shares one compression scheme (the engine's
        # case), compress the whole batch's K/V in a single call — the
        # transform is row-local, so this is bitwise identical to the
        # per-request compress inside append().
        shared_key = caches[0].compression_key()
        precompressed = all(
            cache.compression_key() == shared_key for cache in caches[1:]
        )
        if precompressed:
            k = caches[0].compress(k)
            v = caches[0].compress(v)

        contexts = []
        for index, cache in enumerate(caches):
            k_row = k[index : index + 1]
            v_row = v[index : index + 1]
            if precompressed:
                keys, values = cache.append_precompressed(k_row, v_row)
            else:
                keys, values = cache.append(k_row, v_row)
            contexts.append(
                self._attention_core(
                    q[index : index + 1], keys, values, int(starts[index])
                )
            )
        context = np.concatenate(contexts, axis=0)  # (B, H, 1, hd)
        context = context.transpose(0, 2, 1, 3).reshape(batch, new_len, d_model)
        return self._project_out(context)

    def step_mixed(
        self, x: np.ndarray, caches: list[KVCache], lengths: list[int]
    ) -> np.ndarray:
        """Variable-length prompt segments for many requests at once.

        The chunk lane of a mixed step: prompt chunks — a budget-sized
        slice of a long prompt, or a whole short prompt — are
        flattened along the time axis into one ``(1, total, d_model)``
        array so the projections, norms and FFN run as a single GeMM
        over every prefill token in the step, while attention runs per
        segment against that request's exact-length cache.  A segment
        may start anywhere (``cache.length`` positions already
        cached): rotary phases are gathered per flattened position
        (:meth:`RotaryTable.gather`), and the causal mask spans
        ``cache_len + segment`` so chunk queries see the whole cached
        history plus their own prefix.  Because multi-row GeMM results
        are row-local (every ``M >= 2`` matmul kernel accumulates rows
        identically), each segment is bitwise identical to the same
        rows of a monolithic prefill — which is what makes chunked
        prefill token-identical to unchunked prefill.  Single-token
        decodes do *not* belong in this lane: OpenBLAS's ``M == 1``
        kernel accumulates differently, so the engine keeps decodes on
        :meth:`step_batch` to preserve their own bitwise guarantee.

        Args:
            x: ``(1, total, d_model)`` activations, segments
                concatenated in request order.
            caches: one :class:`KVCache` per segment for *this* layer,
                each extended in place by its segment's positions.
            lengths: per-segment token counts summing to ``total``.
        """
        batch, total, d_model = x.shape
        if batch != 1:
            raise ModelError(f"mixed steps flatten to batch 1, got {batch}")
        if sum(lengths) != total or min(lengths, default=0) < 1:
            raise ModelError(
                f"segment lengths {lengths} must be positive and sum to {total}"
            )
        if len(caches) != len(lengths):
            raise ModelError(f"got {len(caches)} caches for {len(lengths)} segments")
        starts = [cache.length for cache in caches]
        qkv = self._project_qkv(x)
        q, k, v = qkv[0], qkv[1], qkv[2]  # (1, H, total, hd)

        if self.rotary is not None:
            positions = np.concatenate(
                [
                    np.arange(start, start + length)
                    for start, length in zip(starts, lengths)
                ]
            )
            cos, sin = self.rotary.gather(positions)  # (total, hd)
            q = q * cos + _rotate_half_np(q) * sin
            k = k * cos + _rotate_half_np(k) * sin

        contexts = []
        offset = 0
        for cache, start, length in zip(caches, starts, lengths):
            stop = offset + length
            keys, values = cache.append(k[:, :, offset:stop], v[:, :, offset:stop])
            contexts.append(
                self._attention_core(q[:, :, offset:stop], keys, values, start)
            )
            offset = stop
        context = np.concatenate(contexts, axis=2)  # (1, H, total, hd)
        context = context.transpose(0, 2, 1, 3).reshape(batch, total, d_model)
        return self._project_out(context)
