"""Synthetic corpora standing in for WikiText-2, PTB and C4.

The paper evaluates perplexity on three public datasets; this offline
environment cannot download them, so each is replaced by a seeded
generator producing text with a distinct register (documented as a
substitution in DESIGN.md):

* ``wikitext2-sim`` — encyclopedic prose with section headings, dates
  and places (moderate entropy, long sentences).
* ``ptb-sim`` — financial newswire with ``<unk>`` tokens, tickers and
  numbers (narrow domain, most predictable).
* ``c4-sim`` — noisy web text mixing prose, URLs, list fragments and
  casing noise (highest entropy).

What matters for the reproduction is not the absolute perplexity but
that (a) models *trained on this distribution* have meaningful held-out
perplexity, and (b) the three evaluation streams differ enough that the
adaptive precision search can reach different conclusions per dataset,
as in the paper's Table II / Fig. 14.
"""

from __future__ import annotations

import functools
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.llm.tokenizer import ByteTokenizer

#: Names of the three simulated evaluation datasets, in paper order.
DATASETS: tuple[str, ...] = ("wikitext2-sim", "ptb-sim", "c4-sim")

_ARTICLES = ["the", "a", "its", "their", "this", "that"]
_CONNECTIVES = ["and", "but", "while", "although", "because", "after", "before"]

_WIKI_NOUNS = [
    "village", "river", "empire", "treaty", "battle", "railway", "album",
    "species", "district", "cathedral", "expedition", "manuscript", "festival",
    "parliament", "observatory", "dynasty", "harbour", "monument", "province",
    "regiment", "compound", "archive", "census", "orchestra", "basilica",
]
_WIKI_VERBS = [
    "established", "recorded", "completed", "described", "restored",
    "commissioned", "dissolved", "annexed", "documented", "reconstructed",
    "surveyed", "inaugurated", "excavated", "chronicled", "abandoned",
]
_WIKI_ADJS = [
    "northern", "medieval", "prominent", "coastal", "industrial", "ancient",
    "celebrated", "fortified", "neighbouring", "historic", "agrarian",
]
_WIKI_PLACES = [
    "saxony", "brittany", "anatolia", "cumbria", "bohemia", "tuscany",
    "galicia", "silesia", "normandy", "thessaly", "pomerania", "dalmatia",
]

_PTB_COMPANIES = [
    "amcore corp.", "westvale inc.", "drexel partners", "hanover group",
    "meridian industries", "calloway & sons", "pacific holdings",
    "northfield capital", "bayside trust", "crestline motors",
]
_PTB_NOUNS = [
    "earnings", "revenue", "shares", "dividends", "futures", "bonds",
    "inventories", "margins", "forecasts", "acquisitions", "securities",
]
_PTB_VERBS = [
    "rose", "fell", "climbed", "slipped", "surged", "declined", "rebounded",
    "stabilized", "plunged", "edged higher", "edged lower",
]

_C4_OPENERS = [
    "check out", "click here for", "top reasons why", "how to fix",
    "you won't believe", "the ultimate guide to", "5 tips for",
    "frequently asked questions about", "what nobody tells you about",
]
_C4_TOPICS = [
    "garden lighting", "budget laptops", "sourdough baking", "trail running",
    "home insulation", "vintage cameras", "road trips", "meal prep",
    "water filters", "guitar pedals", "standing desks", "houseplants",
]
_C4_DOMAINS = ["example.com", "blogspot.net", "shopwise.org", "dailyhowto.io"]


def _sentence(rng: np.random.Generator, words: list[str], length: int) -> str:
    return " ".join(rng.choice(words) for _ in range(length))


def _wikitext_paragraph(rng: np.random.Generator) -> str:
    lines = []
    if rng.random() < 0.2:
        title = f"{rng.choice(_WIKI_ADJS)} {rng.choice(_WIKI_NOUNS)}"
        lines.append(f"= {title} =")
    for _ in range(rng.integers(2, 5)):
        year = int(rng.integers(1400, 1990))
        sentence = (
            f"{rng.choice(_ARTICLES)} {rng.choice(_WIKI_ADJS)} "
            f"{rng.choice(_WIKI_NOUNS)} of {rng.choice(_WIKI_PLACES)} was "
            f"{rng.choice(_WIKI_VERBS)} in {year} "
            f"{rng.choice(_CONNECTIVES)} later {rng.choice(_WIKI_VERBS)} by "
            f"{rng.choice(_ARTICLES)} {rng.choice(_WIKI_NOUNS)} ."
        )
        lines.append(sentence)
    return "\n".join(lines)


def _ptb_paragraph(rng: np.random.Generator) -> str:
    lines = []
    for _ in range(rng.integers(2, 5)):
        amount = f"{rng.integers(1, 99)}.{rng.integers(0, 9)}"
        sentence = (
            f"{rng.choice(_PTB_COMPANIES)} said {rng.choice(_PTB_NOUNS)} "
            f"{rng.choice(_PTB_VERBS)} {amount} % in the <unk> quarter "
            f"{rng.choice(_CONNECTIVES)} analysts expect {rng.choice(_PTB_NOUNS)} "
            f"of $ {rng.integers(1, 900)} million ."
        )
        lines.append(sentence)
    return "\n".join(lines)


def _c4_paragraph(rng: np.random.Generator) -> str:
    lines = []
    for _ in range(rng.integers(1, 4)):
        topic = rng.choice(_C4_TOPICS)
        opener = rng.choice(_C4_OPENERS)
        if rng.random() < 0.3:
            opener = opener.upper() if rng.random() < 0.3 else opener.title()
        line = f"{opener} {topic}!"
        if rng.random() < 0.4:
            line += f" visit https://www.{rng.choice(_C4_DOMAINS)}/{topic.replace(' ', '-')}"
        if rng.random() < 0.3:
            line += f" rated {rng.integers(1, 5)}/5 by {rng.integers(3, 999)} users"
        lines.append(line)
        lines.append(_sentence(rng, _C4_TOPICS + _WIKI_NOUNS + _PTB_NOUNS, int(rng.integers(4, 10))))
    return "\n".join(lines)


_GENERATORS = {
    "wikitext2-sim": _wikitext_paragraph,
    "ptb-sim": _ptb_paragraph,
    "c4-sim": _c4_paragraph,
}


def generate_text(name: str, n_chars: int, seed: int) -> str:
    """Generate at least ``n_chars`` characters of a corpus register."""
    if name not in _GENERATORS:
        raise ModelError(f"unknown dataset {name!r}; known: {DATASETS}")
    rng = np.random.default_rng(seed)
    paragraph = _GENERATORS[name]
    chunks: list[str] = []
    total = 0
    while total < n_chars:
        text = paragraph(rng) + "\n\n"
        chunks.append(text)
        total += len(text)
    return "".join(chunks)[:n_chars]


@dataclass(frozen=True)
class Corpus:
    """Tokenized train/validation streams of one simulated dataset."""

    name: str
    train_tokens: np.ndarray
    validation_tokens: np.ndarray


@functools.lru_cache(maxsize=8)
def load_corpus(
    name: str, train_chars: int = 262_144, validation_chars: int = 32_768
) -> Corpus:
    """Build (and memoize) one corpus with disjoint train/val streams."""
    tokenizer = ByteTokenizer()
    # zlib.crc32 is stable across processes (str.hash is salted).
    base_seed = zlib.crc32(name.encode()) % (2**31)
    train = generate_text(name, train_chars, seed=base_seed)
    validation = generate_text(name, validation_chars, seed=base_seed + 1)
    return Corpus(
        name=name,
        train_tokens=tokenizer.encode(train),
        validation_tokens=tokenizer.encode(validation),
    )


def training_mixture(chars_per_corpus: int = 131_072) -> np.ndarray:
    """Interleaved mixture of all three corpora for zoo pre-training.

    Mirrors "general web-scale pre-training then per-dataset
    evaluation": every zoo model sees all three registers.
    """
    streams = [
        load_corpus(name).train_tokens[: chars_per_corpus] for name in DATASETS
    ]
    block = 2048
    pieces: list[np.ndarray] = []
    for offset in range(0, chars_per_corpus, block):
        for stream in streams:
            pieces.append(stream[offset : offset + block])
    return np.concatenate(pieces)


def sequence_windows(tokens: np.ndarray, seq_len: int, n_sequences: int, seed: int = 0) -> np.ndarray:
    """Sample ``(n_sequences, seq_len)`` windows from a token stream.

    Used both for calibration (sampled from the *training* stream, as
    the paper reuses weight-PTQ calibration data) and for validation
    batching.
    """
    tokens = np.asarray(tokens)
    if tokens.size < seq_len + 1:
        raise ModelError(
            f"stream of {tokens.size} tokens too short for windows of {seq_len}"
        )
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, tokens.size - seq_len, size=n_sequences)
    return np.stack([tokens[s : s + seq_len] for s in starts]).astype(np.int64)


def calibration_sequences(
    name: str, n_sequences: int = 8, seq_len: int = 128, seed: int = 1234
) -> np.ndarray:
    """Calibration windows from the training stream of a dataset."""
    return sequence_windows(load_corpus(name).train_tokens, seq_len, n_sequences, seed)


def validation_sequences(
    name: str, n_sequences: int = 16, seq_len: int = 128, seed: int = 4321
) -> np.ndarray:
    """Held-out windows from the validation stream of a dataset."""
    return sequence_windows(
        load_corpus(name).validation_tokens, seq_len, n_sequences, seed
    )
