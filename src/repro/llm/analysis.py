"""Activation-distribution analysis for format design decisions.

The Anda format's two structural choices — *group-shared* exponents
(rather than per-tensor) and grouping along the *channel* axis — rest
on empirical properties of LLM activations: heavy-tailed magnitudes
with strong per-channel outliers (the reason weight-activation INT
quantization struggles, Sec. I).  This module measures those properties
on the substrate's models so the design rationale is reproducible:

* per-channel dynamic range and outlier ratios,
* the exponent spread *within* a shared-exponent group as a function of
  group size — precisely the quantity that forces mantissa truncation
  (Fig. 4) and drives the Fig. 5 trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import fp16
from repro.core.precision import TensorKind
from repro.errors import ModelError
from repro.llm.autograd import no_grad
from repro.llm.transformer import CausalLM


@dataclass
class ActivationCapture:
    """Raw activation samples collected per tensor kind."""

    samples: dict[TensorKind, list[np.ndarray]] = field(
        default_factory=lambda: {kind: [] for kind in TensorKind}
    )

    def __call__(self, kind: TensorKind, activation: np.ndarray) -> None:
        self.samples[kind].append(
            activation.reshape(-1, activation.shape[-1]).copy()
        )

    def stacked(self, kind: TensorKind) -> np.ndarray:
        if not self.samples[kind]:
            raise ModelError(f"no activations captured for {kind}")
        return np.concatenate(self.samples[kind], axis=0)


def capture_activations(
    model: CausalLM, tokens: np.ndarray
) -> ActivationCapture:
    """Run one forward pass collecting all four activation tensors."""
    capture = ActivationCapture()
    previous = model.tap.recorder
    model.set_recorder(capture)
    try:
        with no_grad():
            model.forward(np.asarray(tokens))
    finally:
        model.set_recorder(previous)
    return capture


@dataclass(frozen=True)
class OutlierStats:
    """Channel-outlier profile of one activation tensor.

    Attributes:
        max_abs: global magnitude maximum.
        median_channel_max: median over channels of per-channel maxima.
        outlier_ratio: max channel magnitude over the median channel
            magnitude — how dominant outlier channels are.
        top1pct_energy: fraction of squared magnitude carried by the
            top 1% of channels.
    """

    max_abs: float
    median_channel_max: float
    outlier_ratio: float
    top1pct_energy: float


def outlier_stats(activation: np.ndarray) -> OutlierStats:
    """Channel-outlier statistics of a ``(tokens, channels)`` tensor."""
    arr = np.abs(np.asarray(activation, dtype=np.float64))
    if arr.ndim != 2 or arr.size == 0:
        raise ModelError("outlier_stats expects a non-empty 2-D tensor")
    channel_max = arr.max(axis=0)
    channel_energy = (arr**2).sum(axis=0)
    top = max(1, int(np.ceil(channel_energy.size * 0.01)))
    top_energy = np.sort(channel_energy)[-top:].sum()
    median = float(np.median(channel_max))
    return OutlierStats(
        max_abs=float(arr.max()),
        median_channel_max=median,
        outlier_ratio=float(channel_max.max() / max(median, 1e-30)),
        top1pct_energy=float(top_energy / channel_energy.sum()),
    )


def group_exponent_spread(
    activation: np.ndarray, group_size: int
) -> np.ndarray:
    """Per-group max-min exponent gaps at a given group size.

    The gap is the number of mantissa bits an element *loses* to
    shared-exponent alignment in the worst case; its distribution over
    groups explains why small groups tolerate shorter mantissas
    (Fig. 5) and why per-channel grouping would be wasteful.
    """
    rows = np.asarray(activation)
    if rows.ndim != 2:
        raise ModelError("group_exponent_spread expects a 2-D tensor")
    _, exponent, significand = fp16.decompose(rows)
    pad = (-rows.shape[1]) % group_size
    if pad:
        exponent = np.pad(exponent, ((0, 0), (0, pad)), constant_values=fp16.ZERO_EXPONENT)
        significand = np.pad(significand, ((0, 0), (0, pad)))
    groups_e = exponent.reshape(-1, group_size)
    groups_s = significand.reshape(-1, group_size)
    spreads = []
    for row_e, row_s in zip(groups_e, groups_s):
        live = row_s > 0
        if not live.any():
            continue
        spreads.append(int(row_e[live].max() - row_e[live].min()))
    return np.asarray(spreads, dtype=np.int64)


def mean_spread_by_group_size(
    activation: np.ndarray, group_sizes: tuple[int, ...] = (1, 8, 16, 32, 64, 128, 256)
) -> dict[int, float]:
    """Mean within-group exponent spread per candidate group size."""
    return {
        gs: float(group_exponent_spread(activation, gs).mean()) if gs > 1 else 0.0
        for gs in group_sizes
    }
