"""Deterministic train-and-cache model zoo.

``get_model("opt-1.3b-sim")`` returns the scaled-down twin of OPT-1.3B,
training it from scratch on the first call and caching the weights under
``.anda_zoo_cache/`` (keyed by a hash of the architecture and training
recipe, so stale caches are never loaded after a config change).

Experiments never retrain: every figure/table driver and every example
shares the same checkpoints, exactly as the paper's experiments share
pre-trained checkpoints.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.llm.config import SIM_CONFIGS, ModelConfig, get_config
from repro.llm.datasets import training_mixture
from repro.llm.training import train_language_model
from repro.llm.transformer import CausalLM, build_model

#: Environment variable overriding the cache location.
CACHE_ENV = "ANDA_ZOO_CACHE"

_DEFAULT_CACHE = Path(__file__).resolve().parents[3] / ".anda_zoo_cache"

#: In-process cache so repeated get_model calls share one instance.
_LOADED: dict[str, CausalLM] = {}

_TRAIN_BATCH = 12
_TRAIN_SEQ = 96
_TRAIN_LR = 3e-3


def cache_dir() -> Path:
    """Resolve the on-disk cache directory (creating it lazily)."""
    return Path(os.environ.get(CACHE_ENV, _DEFAULT_CACHE))


def _recipe_fingerprint(config: ModelConfig) -> str:
    recipe = {
        "name": config.name,
        "family": config.family,
        "n_layers": config.n_layers,
        "d_model": config.d_model,
        "n_heads": config.n_heads,
        "ffn_dim": config.ffn_dim,
        "vocab_size": config.vocab_size,
        "max_seq_len": config.max_seq_len,
        "seed": config.seed,
        "train_steps": config.train_steps,
        "batch": _TRAIN_BATCH,
        "seq": _TRAIN_SEQ,
        "lr": _TRAIN_LR,
        "version": 1,
    }
    blob = json.dumps(recipe, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _cache_path(config: ModelConfig) -> Path:
    return cache_dir() / f"{config.name}-{_recipe_fingerprint(config)}.npz"


def train_zoo_model(config: ModelConfig) -> CausalLM:
    """Train one sim model from scratch (no cache interaction)."""
    model = build_model(config)
    tokens = training_mixture()
    train_language_model(
        model,
        tokens,
        steps=config.train_steps,
        batch_size=_TRAIN_BATCH,
        seq_len=_TRAIN_SEQ,
        learning_rate=_TRAIN_LR,
        seed=config.seed,
    )
    return model


def get_model(name: str, use_cache: bool = True) -> CausalLM:
    """Return the trained sim model for ``name`` (training if needed).

    Args:
        name: a ``*-sim`` config name, or a paper-scale name whose sim
            twin will be substituted (``"opt-1.3b"`` -> ``"opt-1.3b-sim"``).
        use_cache: disable to force a fresh training run.

    Raises:
        ModelError: for names with no sim twin.
    """
    config = get_config(name).sim_twin()
    if config.name not in SIM_CONFIGS:
        raise ModelError(f"{name!r} has no registered sim twin")
    if use_cache and config.name in _LOADED:
        return _LOADED[config.name]

    path = _cache_path(config)
    if use_cache and path.exists():
        model = build_model(config)
        with np.load(path) as archive:
            model.load_state_dict({key: archive[key] for key in archive.files})
    else:
        model = train_zoo_model(config)
        if use_cache:
            path.parent.mkdir(parents=True, exist_ok=True)
            np.savez_compressed(path, **model.state_dict())
    if use_cache:
        _LOADED[config.name] = model
    return model


def clear_memory_cache() -> None:
    """Drop in-process model instances (disk cache untouched)."""
    _LOADED.clear()


def prewarm(names: list[str] | None = None) -> None:
    """Train/cache a list of zoo models up front (default: all)."""
    for name in names or sorted(SIM_CONFIGS):
        get_model(name)
