"""Group-wise integer weight-only quantization (the W4A16 baseline).

The paper starts every activation experiment from an Omniquant
W4A16g128 checkpoint.  Omniquant itself is a learned-clipping PTQ
method; its *role* here — producing a weight-quantized model with a
small perplexity gap that the activation study builds on — is filled by
asymmetric round-to-nearest quantization with group-wise scales (the
standard W4A16 fallback), as documented in DESIGN.md.

Weights quantize along their reduction (input) axis in groups, matching
the GeMM's dot-product direction: each group of a column stores INT
codes plus one FP scale/zero pair, so the hardware multiplies integer
codes and folds the scale into the cross-group FP accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.llm.transformer import CausalLM

#: Omniquant's group size in the paper's W4A16g128 scheme.
DEFAULT_GROUP_SIZE = 128


@dataclass(frozen=True)
class WeightQuantConfig:
    """Parameters of a group-wise weight quantization.

    Attributes:
        bits: integer code width (4 for W4A16).
        group_size: reduction-axis elements per scale; clipped to the
            actual reduction length of small (sim) matrices.
    """

    bits: int = 4
    group_size: int = DEFAULT_GROUP_SIZE

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 8:
            raise FormatError(f"weight bits must be in [2, 8], got {self.bits}")
        if self.group_size < 1:
            raise FormatError(f"group_size must be >= 1, got {self.group_size}")

    @property
    def levels(self) -> int:
        return (1 << self.bits) - 1


@dataclass
class QuantizedWeight:
    """INT codes plus per-group dequantization parameters.

    ``codes`` has the original ``(in_features, out_features)`` shape;
    ``scales`` and ``zeros`` have shape ``(n_groups, out_features)``.
    """

    codes: np.ndarray
    scales: np.ndarray
    zeros: np.ndarray
    group_size: int
    bits: int
    in_features: int

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float32 weight matrix."""
        groups = self.codes.reshape(
            -1, self.group_size, self.codes.shape[-1]
        ).astype(np.float32)
        restored = (groups - self.zeros[:, None, :]) * self.scales[:, None, :]
        return restored.reshape(-1, self.codes.shape[-1])[: self.in_features]

    def storage_bits(self) -> int:
        """Footprint: codes + FP16 scale and zero per group/column."""
        n_codes = self.codes.size
        n_groups = self.scales.size
        return self.bits * n_codes + 2 * 16 * n_groups


def quantize_weights(weight: np.ndarray, config: WeightQuantConfig) -> QuantizedWeight:
    """Asymmetric group-wise RTN quantization of one ``(in, out)`` matrix."""
    weight = np.asarray(weight, dtype=np.float32)
    if weight.ndim != 2:
        raise FormatError(f"weights must be 2-D (in, out), got shape {weight.shape}")
    in_features, out_features = weight.shape
    group = min(config.group_size, in_features)
    pad = (-in_features) % group
    padded = np.pad(weight, ((0, pad), (0, 0)))
    grouped = padded.reshape(-1, group, out_features)

    w_min = grouped.min(axis=1)
    w_max = grouped.max(axis=1)
    scales = (w_max - w_min) / config.levels
    scales = np.where(scales <= 0, 1.0, scales).astype(np.float32)
    zeros = np.round(-w_min / scales).astype(np.float32)
    codes = np.clip(
        np.round(grouped / scales[:, None, :]) + zeros[:, None, :],
        0,
        config.levels,
    ).astype(np.int16)

    return QuantizedWeight(
        codes=codes.reshape(-1, out_features)[: in_features + pad],
        scales=scales,
        zeros=zeros,
        group_size=group,
        bits=config.bits,
        in_features=in_features,
    )


def fake_quantize_weights(weight: np.ndarray, config: WeightQuantConfig) -> np.ndarray:
    """Quantize-dequantize a weight matrix (the model-side view)."""
    return quantize_weights(weight, config).dequantize()


def quantize_model_weights(
    model: CausalLM, config: WeightQuantConfig | None = None
) -> CausalLM:
    """Fake-quantize every FP-INT GeMM weight of a model, in place.

    Touches exactly the projections whose activations the Anda format
    targets — QKV, attention output, FFN up/gate/down — leaving
    embeddings, norms and the LM head in FP (as weight-only LLM
    deployments do).  Returns the same model for chaining.
    """
    config = config or WeightQuantConfig()
    for block in model.blocks:
        linears = [block.attention.qkv_proj, block.attention.out_proj]
        ffn = block.ffn
        if hasattr(ffn, "gate_proj"):
            linears += [ffn.gate_proj, ffn.up_proj, ffn.down_proj]
        else:
            linears += [ffn.up_proj, ffn.down_proj]
        for linear in linears:
            linear.weight.data[...] = fake_quantize_weights(
                linear.weight.data, config
            )
    return model


def weight_quantized_copy(
    model: CausalLM, config: WeightQuantConfig | None = None
) -> CausalLM:
    """Weight-quantized clone; the input model stays full precision."""
    clone = CausalLM(model.config)
    clone.load_state_dict(model.state_dict())
    return quantize_model_weights(clone, config)
