"""Deployment artifacts: the compile-time output of the Anda flow.

Fig. 1 ends the offline phase with "Anda precision instructions" handed
to the runtime.  This module makes that hand-off concrete: a JSON
artifact per (model, dataset, tolerance) carrying the searched
combination, the accuracy evidence, and the hardware projection — the
file a deployment pipeline would ship next to the weight checkpoint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.precision import PrecisionCombination
from repro.errors import ModelError
from repro.hw.accelerator import anda_operating_point
from repro.quant.deploy import DeploymentResult, deploy_anda

ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class DeploymentArtifact:
    """Everything the runtime needs to run a model with Anda activations."""

    model_name: str
    dataset: str
    tolerance: float
    combination: PrecisionCombination
    effective_mantissa: float
    bops_saving: float
    reference_ppl: float
    anda_ppl: float
    projected_speedup: float
    projected_energy_efficiency: float
    search_iterations: int

    def to_json(self) -> str:
        payload = {
            "version": ARTIFACT_VERSION,
            "model": self.model_name,
            "dataset": self.dataset,
            "tolerance": self.tolerance,
            "mantissa_bits": {
                "qkv": self.combination.qkv,
                "o": self.combination.o,
                "u": self.combination.u,
                "d": self.combination.d,
            },
            "effective_mantissa": self.effective_mantissa,
            "bops_saving": self.bops_saving,
            "validation": {
                "reference_ppl": self.reference_ppl,
                "anda_ppl": self.anda_ppl,
            },
            "projection": {
                "speedup_vs_fpfp": self.projected_speedup,
                "energy_efficiency_vs_fpfp": self.projected_energy_efficiency,
            },
            "search_iterations": self.search_iterations,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeploymentArtifact":
        payload = json.loads(text)
        if payload.get("version") != ARTIFACT_VERSION:
            raise ModelError(
                f"unsupported artifact version {payload.get('version')}"
            )
        bits = payload["mantissa_bits"]
        return cls(
            model_name=payload["model"],
            dataset=payload["dataset"],
            tolerance=payload["tolerance"],
            combination=PrecisionCombination(
                bits["qkv"], bits["o"], bits["u"], bits["d"]
            ).validate(),
            effective_mantissa=payload["effective_mantissa"],
            bops_saving=payload["bops_saving"],
            reference_ppl=payload["validation"]["reference_ppl"],
            anda_ppl=payload["validation"]["anda_ppl"],
            projected_speedup=payload["projection"]["speedup_vs_fpfp"],
            projected_energy_efficiency=payload["projection"][
                "energy_efficiency_vs_fpfp"
            ],
            search_iterations=payload["search_iterations"],
        )

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Path | str) -> "DeploymentArtifact":
        return cls.from_json(Path(path).read_text())


def build_artifact(
    model_name: str, dataset: str, tolerance: float
) -> DeploymentArtifact:
    """Run the offline flow and package the result."""
    deployment: DeploymentResult = deploy_anda(model_name, dataset, tolerance)
    point = anda_operating_point(model_name, deployment.combination, tolerance)
    return DeploymentArtifact(
        model_name=model_name,
        dataset=dataset,
        tolerance=tolerance,
        combination=deployment.combination,
        effective_mantissa=deployment.effective_mantissa,
        bops_saving=deployment.bops_saving,
        reference_ppl=deployment.reference_ppl_validation,
        anda_ppl=deployment.anda_ppl_validation,
        projected_speedup=point.speedup,
        projected_energy_efficiency=point.energy_efficiency,
        search_iterations=deployment.search.iterations,
    )
