"""Registry of BFP-family formats (the paper's Table I taxonomy).

Each entry records how a format family handles mantissa length,
computation style and storage — the axes Table I compares — plus, where
applicable, a factory for the activation quantizer that evaluates it on
the LLM substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.llm.hooks import Quantizer
from repro.quant.act_quant import (
    FIGNA_MANTISSA_BITS,
    VSQUANT_MANTISSA_BITS,
    bfp_quantizer,
    figna_quantizer,
    fp16_quantizer,
    vsquant_quantizer,
)


@dataclass(frozen=True)
class FormatSpec:
    """One row of the format taxonomy.

    Attributes:
        name: format name as cited in the paper.
        length_class: ``"uni"``, ``"multi"`` or ``"variable"``.
        compute_mantissa_bits: mantissa widths available at compute time.
        compute_style: ``"bit-parallel"``, ``"chunk-serial"`` or
            ``"bit-serial"``.
        storage: activation storage layout class.
        quantizer_factory: builds the evaluation quantizer (``None`` for
            formats we only tabulate, e.g. training-time-only ones).
    """

    name: str
    length_class: str
    compute_mantissa_bits: tuple[int, ...]
    compute_style: str
    storage: str
    quantizer_factory: Callable[[], Quantizer] | None = None


TABLE1_FORMATS: tuple[FormatSpec, ...] = (
    FormatSpec("VS-Quant", "uni", (4,), "bit-parallel", "BFP element-based",
               vsquant_quantizer),
    FormatSpec("BOOST", "uni", (5,), "bit-parallel", "BFP element-based",
               lambda: bfp_quantizer(5)),
    FormatSpec("X. Lian et al.", "uni", (8,), "bit-parallel", "BFP element-based",
               lambda: bfp_quantizer(8)),
    FormatSpec("FIGNA", "uni", (14,), "bit-parallel", "FP16 element-based",
               figna_quantizer),
    FormatSpec("H. Fan et al.", "uni", (15,), "bit-parallel", "BFP element-based",
               lambda: bfp_quantizer(15)),
    FormatSpec("Flexpoint", "uni", (16,), "bit-parallel", "BFP element-based",
               lambda: bfp_quantizer(16)),
    FormatSpec("FAST", "multi", (2, 4), "chunk-serial", "BFP chunk-based"),
    FormatSpec("DaCapo", "multi", (2, 4, 8), "bit-parallel", "BFP element-based"),
    FormatSpec("FlexBlock", "multi", (4, 8, 16), "bit-parallel", "BFP element-based"),
    FormatSpec("Anda (Ours)", "variable", tuple(range(1, 17)), "bit-serial",
               "BFP bit-plane-based"),
)

#: Accuracy-comparison schemes of Table II, keyed by row label.
TABLE2_SCHEMES: dict[str, Callable[[], Quantizer]] = {
    "omniquant": fp16_quantizer,
    "figna": figna_quantizer,
    "vs-quant": vsquant_quantizer,
}

#: Uniform BOPs savings of the fixed-format rows.
SCHEME_BOPS_SAVING: dict[str, float] = {
    "omniquant": 1.0,
    "figna": 64 / (4 * FIGNA_MANTISSA_BITS),
    "vs-quant": 64 / (4 * VSQUANT_MANTISSA_BITS),
}


def get_format(name: str) -> FormatSpec:
    """Look up a Table I format row by (case-insensitive) name."""
    for spec in TABLE1_FORMATS:
        if spec.name.lower() == name.lower():
            return spec
    raise KeyError(f"unknown format {name!r}")
