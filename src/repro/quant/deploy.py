"""End-to-end Anda deployment pipeline (Fig. 1's offline calibration).

``deploy_anda`` reproduces the paper's compile-time flow for one model,
dataset and accuracy tolerance:

1. take the trained model from the zoo and weight-quantize a copy
   (W4A16 via :mod:`repro.quant.weight_quant`) — the Omniquant-role
   reference,
2. evaluate the reference perplexity on the calibration set (sampled
   from the dataset's *training* stream, as the paper reuses the weight
   PTQ calibration data),
3. run the adaptive precision combination search (Algorithm 1) with the
   BOPs model of the paper-scale architecture,
4. report the chosen combination plus calibration and held-out
   (validation) perplexities and the BOPs saving.

Results are memoized per (model, dataset, tolerance, iterations) both
in-process and on disk (next to the zoo cache, keyed by the model's
training fingerprint), so every figure/table driver — and every re-run
of the benchmark harness — shares one search per cell, the same way the
paper derives Fig. 14, Table II and the hardware experiments from a
single search outcome.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.bops import bops_saving, combination_bops, effective_mantissa_bits
from repro.core.precision import PrecisionCombination
from repro.core.search import SearchResult, SearchStep, adaptive_precision_search
from repro.errors import ModelError
from repro.llm.config import get_config
from repro.llm.datasets import calibration_sequences, validation_sequences
from repro.llm.hooks import anda_quantizer
from repro.llm.perplexity import evaluate_perplexity, relative_accuracy
from repro.llm.transformer import CausalLM
from repro.llm.zoo import get_model
from repro.quant.weight_quant import WeightQuantConfig, weight_quantized_copy

#: Calibration set size: windows x length (a few thousand tokens, the
#: scale the paper quotes for PTQ calibration reuse).
CALIBRATION_SEQUENCES = 8
CALIBRATION_LENGTH = 128

VALIDATION_SEQUENCES = 16
VALIDATION_LENGTH = 128

#: Mantissa widths the uniform deployment sweep considers.
DEFAULT_CANDIDATE_BITS = tuple(range(4, 14))


@dataclass
class DeploymentResult:
    """Outcome of one offline Anda calibration.

    Attributes:
        model_name: paper-scale model name (e.g. ``"opt-1.3b"``).
        dataset: simulated dataset name.
        tolerance: accuracy-loss tolerance delta.
        combination: chosen ``[M_qkv, M_o, M_u, M_d]``.
        search: the full Algorithm-1 trace.
        reference_ppl_calibration: weight-quantized PPL on calibration.
        reference_ppl_validation: weight-quantized PPL on validation.
        anda_ppl_validation: PPL with Anda activations on validation.
        bops_saving: BOPs reduction vs the FP16-activation baseline.
        effective_mantissa: MAC-weighted mean mantissa length.
    """

    model_name: str
    dataset: str
    tolerance: float
    combination: PrecisionCombination
    search: SearchResult
    reference_ppl_calibration: float
    reference_ppl_validation: float
    anda_ppl_validation: float
    bops_saving: float
    effective_mantissa: float

    @property
    def validation_accuracy_drop(self) -> float:
        """Relative accuracy drop (%) on the held-out set (Table II red)."""
        return (
            relative_accuracy(self.anda_ppl_validation, self.reference_ppl_validation)
            - 1.0
        ) * 100.0


_DEPLOY_CACHE: dict[tuple, DeploymentResult] = {}
_REFERENCE_CACHE: dict[str, CausalLM] = {}

#: Bump when the pipeline's semantics change (invalidates disk cache).
_DISK_CACHE_VERSION = 1


def _disk_cache_path(model_name: str, dataset: str, tolerance: float,
                     max_iterations: int):
    """Disk-cache location, keyed by the zoo model's training recipe so
    a retrained twin can never serve stale search results."""
    from repro.llm.zoo import _recipe_fingerprint, cache_dir

    config = get_config(model_name).sim_twin()
    key = (
        f"deploy-v{_DISK_CACHE_VERSION}-{config.name}-"
        f"{_recipe_fingerprint(config)}-{dataset}-t{tolerance:g}-i{max_iterations}"
    )
    return cache_dir() / "deployments" / f"{key}.json"


def _serialize_deployment(result: DeploymentResult) -> str:
    steps = [
        {
            "combination": list(step.combination),
            "bops": step.bops,
            "accuracy": step.accuracy,
            "meets": step.meets_tolerance,
            "accepted": step.accepted,
            "best_after": list(step.best_after) if step.best_after else None,
        }
        for step in result.search.steps
    ]
    return json.dumps(
        {
            "model": result.model_name,
            "dataset": result.dataset,
            "tolerance": result.tolerance,
            "combination": list(result.combination),
            "reference_ppl_calibration": result.reference_ppl_calibration,
            "reference_ppl_validation": result.reference_ppl_validation,
            "anda_ppl_validation": result.anda_ppl_validation,
            "bops_saving": result.bops_saving,
            "effective_mantissa": result.effective_mantissa,
            "search": {
                "best_bops": result.search.best_bops,
                "exhausted": result.search.exhausted,
                "steps": steps,
            },
        }
    )


def _deserialize_deployment(text: str) -> DeploymentResult:
    payload = json.loads(text)
    steps = [
        SearchStep(
            iteration=index + 1,
            combination=PrecisionCombination(*step["combination"]),
            bops=step["bops"],
            accuracy=step["accuracy"],
            meets_tolerance=step["meets"],
            accepted=step["accepted"],
            best_after=(
                PrecisionCombination(*step["best_after"])
                if step["best_after"]
                else None
            ),
        )
        for index, step in enumerate(payload["search"]["steps"])
    ]
    best = PrecisionCombination(*payload["combination"])
    search = SearchResult(
        best=best,
        best_bops=payload["search"]["best_bops"],
        reference_accuracy=1.0,
        tolerance=payload["tolerance"],
        steps=steps,
        exhausted=payload["search"]["exhausted"],
    )
    return DeploymentResult(
        model_name=payload["model"],
        dataset=payload["dataset"],
        tolerance=payload["tolerance"],
        combination=best,
        search=search,
        reference_ppl_calibration=payload["reference_ppl_calibration"],
        reference_ppl_validation=payload["reference_ppl_validation"],
        anda_ppl_validation=payload["anda_ppl_validation"],
        bops_saving=payload["bops_saving"],
        effective_mantissa=payload["effective_mantissa"],
    )


def reference_model(model_name: str, weight_config: WeightQuantConfig | None = None) -> CausalLM:
    """The weight-quantized (W4A16) copy of a zoo model, memoized."""
    key = f"{model_name}:{weight_config}"
    if key not in _REFERENCE_CACHE:
        base = get_model(model_name)
        _REFERENCE_CACHE[key] = weight_quantized_copy(base, weight_config)
    return _REFERENCE_CACHE[key]


def deploy_anda(
    model_name: str,
    dataset: str,
    tolerance: float,
    max_iterations: int = 32,
    weight_config: WeightQuantConfig | None = None,
    use_cache: bool = True,
) -> DeploymentResult:
    """Run the one-shot offline calibration for one configuration.

    Args:
        model_name: paper-scale model name; its sim twin is evaluated.
        dataset: one of :data:`repro.llm.datasets.DATASETS`.
        tolerance: accuracy-loss tolerance (0.001 and 0.01 in the paper).
        max_iterations: Algorithm-1 budget (paper uses 32).
        weight_config: weight PTQ parameters (default W4A16).
        use_cache: reuse memoized results for repeated calls.

    Raises:
        ModelError: if the search finds no feasible combination (does
            not happen for tolerances >= 0.1% on the shipped zoo).
    """
    key = (model_name, dataset, round(tolerance, 6), max_iterations, str(weight_config))
    if use_cache and key in _DEPLOY_CACHE:
        return _DEPLOY_CACHE[key]
    disk_path = None
    if use_cache and weight_config is None:
        disk_path = _disk_cache_path(model_name, dataset, tolerance, max_iterations)
        if disk_path.exists():
            result = _deserialize_deployment(disk_path.read_text())
            _DEPLOY_CACHE[key] = result
            return result

    config = get_config(model_name)
    model = reference_model(model_name, weight_config)
    calibration = calibration_sequences(
        dataset, CALIBRATION_SEQUENCES, CALIBRATION_LENGTH
    )
    validation = validation_sequences(dataset, VALIDATION_SEQUENCES, VALIDATION_LENGTH)

    model.set_quantizer(None)
    reference_cal = evaluate_perplexity(model, calibration)
    reference_val = evaluate_perplexity(model, validation)

    mac_weights = config.mac_weights()

    def accuracy_fn(combination: PrecisionCombination) -> float:
        model.set_quantizer(anda_quantizer(combination))
        ppl = evaluate_perplexity(model, calibration)
        model.set_quantizer(None)
        return relative_accuracy(ppl, reference_cal)

    search = adaptive_precision_search(
        evaluate_accuracy=accuracy_fn,
        evaluate_bops=lambda comb: combination_bops(comb, mac_weights),
        reference_accuracy=1.0,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    if search.best is None:
        raise ModelError(
            f"precision search found no feasible combination for "
            f"{model_name}/{dataset} at tolerance {tolerance}"
        )

    model.set_quantizer(anda_quantizer(search.best))
    anda_val = evaluate_perplexity(model, validation)
    model.set_quantizer(None)

    result = DeploymentResult(
        model_name=model_name,
        dataset=dataset,
        tolerance=tolerance,
        combination=search.best,
        search=search,
        reference_ppl_calibration=reference_cal,
        reference_ppl_validation=reference_val,
        anda_ppl_validation=anda_val,
        bops_saving=bops_saving(search.best, mac_weights),
        effective_mantissa=effective_mantissa_bits(search.best, mac_weights),
    )
    if use_cache:
        _DEPLOY_CACHE[key] = result
        if disk_path is not None:
            disk_path.parent.mkdir(parents=True, exist_ok=True)
            disk_path.write_text(_serialize_deployment(result))
    return result


def calibration_landscape(
    model_name: str,
    dataset: str,
    weight_config: WeightQuantConfig | None = None,
):
    """The (accuracy, BOPs) landscape a search strategy explores.

    Exposes exactly the evaluators :func:`deploy_anda` drives Algorithm
    1 with — each accuracy call is one calibration forward pass of the
    weight-quantized model under the candidate's Anda quantizer — so
    alternative strategies (:mod:`repro.core.search_variants`) can be
    compared on the *real* substrate rather than a synthetic landscape.

    Returns:
        ``(accuracy_fn, bops_fn, reference_accuracy)`` where the
        reference accuracy is 1.0 (the relative-accuracy convention).
    """
    config = get_config(model_name)
    model = reference_model(model_name, weight_config)
    calibration = calibration_sequences(
        dataset, CALIBRATION_SEQUENCES, CALIBRATION_LENGTH
    )
    model.set_quantizer(None)
    reference_cal = evaluate_perplexity(model, calibration)
    mac_weights = config.mac_weights()

    def accuracy_fn(combination: PrecisionCombination) -> float:
        model.set_quantizer(anda_quantizer(combination))
        ppl = evaluate_perplexity(model, calibration)
        model.set_quantizer(None)
        return relative_accuracy(ppl, reference_cal)

    def bops_fn(combination: PrecisionCombination) -> float:
        return combination_bops(combination, mac_weights)

    return accuracy_fn, bops_fn, 1.0


def deploy_uniform(
    model_name: str,
    dataset: str,
    tolerance: float,
    candidate_bits: tuple[int, ...] = DEFAULT_CANDIDATE_BITS,
) -> int:
    """Pick the shortest *uniform* mantissa meeting the tolerance.

    The paper's Sec. VI observes the precision search also serves
    bit-parallel accelerators, which need one fixed width per model
    (a FIGNA-Mx-style deployment).  This scans the uniform ladder on
    the calibration set and returns the smallest feasible width.

    Raises:
        ModelError: if no candidate meets the tolerance.
    """
    model = reference_model(model_name)
    calibration = calibration_sequences(
        dataset, CALIBRATION_SEQUENCES, CALIBRATION_LENGTH
    )
    model.set_quantizer(None)
    reference = evaluate_perplexity(model, calibration)
    for bits in sorted(candidate_bits):
        model.set_quantizer(anda_quantizer(PrecisionCombination.uniform(bits)))
        ppl = evaluate_perplexity(model, calibration)
        model.set_quantizer(None)
        if relative_accuracy(ppl, reference) >= 1.0 - tolerance:
            return bits
    raise ModelError(
        f"no uniform mantissa in {candidate_bits} meets tolerance "
        f"{tolerance} for {model_name}/{dataset}"
    )


def scheme_validation_ppl(model_name: str, dataset: str, quantizer) -> float:
    """Held-out perplexity of an arbitrary activation scheme.

    Used by the Table II driver for the FIGNA / VS-Quant rows (same
    weight-quantized reference, different activation quantizer).
    """
    model = reference_model(model_name)
    validation = validation_sequences(dataset, VALIDATION_SEQUENCES, VALIDATION_LENGTH)
    model.set_quantizer(quantizer)
    try:
        return evaluate_perplexity(model, validation)
    finally:
        model.set_quantizer(None)


def fp16_validation_ppl(model_name: str, dataset: str) -> float:
    """Held-out perplexity of the *unquantized* (FP16) model."""
    model = get_model(model_name)
    validation = validation_sequences(dataset, VALIDATION_SEQUENCES, VALIDATION_LENGTH)
    model.set_quantizer(None)
    return evaluate_perplexity(model, validation)


def clear_deployment_cache() -> None:
    """Drop memoized deployments and reference models (tests only)."""
    _DEPLOY_CACHE.clear()
    _REFERENCE_CACHE.clear()
