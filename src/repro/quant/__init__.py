"""Quantization layer: weight-only PTQ and activation schemes.

* :mod:`repro.quant.weight_quant` — group-wise INT4/INT8 weight
  quantization (the W4A16 starting point).
* :mod:`repro.quant.act_quant` — the activation schemes Table II
  compares (FP16 reference, FIGNA, VS-Quant, uniform BFP).
* :mod:`repro.quant.schemes` — the Table I format taxonomy.
* :mod:`repro.quant.deploy` — the end-to-end offline Anda calibration
  pipeline (weight PTQ -> Algorithm 1 -> validation).
"""

from repro.quant.act_quant import (
    FIGNA_MANTISSA_BITS,
    VSQUANT_MANTISSA_BITS,
    bfp_quantizer,
    figna_quantizer,
    fp16_quantizer,
    vsquant_quantizer,
)
from repro.quant.deploy import (
    DeploymentResult,
    deploy_anda,
    deploy_uniform,
    fp16_validation_ppl,
    reference_model,
    scheme_validation_ppl,
)
from repro.quant.report import DeploymentArtifact, build_artifact
from repro.quant.schemes import TABLE1_FORMATS, FormatSpec, get_format
from repro.quant.weight_quant import (
    QuantizedWeight,
    WeightQuantConfig,
    fake_quantize_weights,
    quantize_model_weights,
    quantize_weights,
    weight_quantized_copy,
)

__all__ = [
    "DeploymentArtifact",
    "DeploymentResult",
    "FIGNA_MANTISSA_BITS",
    "build_artifact",
    "FormatSpec",
    "QuantizedWeight",
    "TABLE1_FORMATS",
    "VSQUANT_MANTISSA_BITS",
    "WeightQuantConfig",
    "bfp_quantizer",
    "deploy_anda",
    "deploy_uniform",
    "fake_quantize_weights",
    "figna_quantizer",
    "fp16_quantizer",
    "fp16_validation_ppl",
    "get_format",
    "quantize_model_weights",
    "quantize_weights",
    "reference_model",
    "scheme_validation_ppl",
    "vsquant_quantizer",
    "weight_quantized_copy",
]
