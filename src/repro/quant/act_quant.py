"""Activation quantization schemes compared in the paper (Table II).

Each scheme is expressed as an activation-tap quantizer for the LLM
substrate plus a BOPs-saving figure:

* **fp16** — activations pass through FP16 rounding only (the
  Omniquant reference row: weight quantization only).
* **figna** — FIGNA's lossless-leaning dynamic conversion: grouped BFP
  with a long (13-bit effective) mantissa; tiny accuracy cost, 1.23x
  BOPs saving.
* **vs-quant** — VS-Quant's 4-bit mantissa format applied directly
  post-training (no retraining), reproducing the paper's collapse row;
  4.0x BOPs saving.
* **anda** — per-tensor-type mantissa lengths from the adaptive search
  (built via :func:`repro.llm.hooks.anda_quantizer`).

All BFP-family schemes share the paper's uniform group size of 64.
"""

from __future__ import annotations

import numpy as np

from repro.core import fp16
from repro.core.anda import ANDA_GROUP_SIZE
from repro.core.bfp import BfpConfig, quantize
from repro.core.groups import from_groups
from repro.core.precision import PrecisionCombination, TensorKind
from repro.llm.hooks import Quantizer, anda_quantizer

#: Effective mantissa length of FIGNA's compute-time conversion (the
#: paper scores FIGNA at 64/52 = 1.23x BOPs, i.e. 13 bits).
FIGNA_MANTISSA_BITS = 13

#: VS-Quant's fixed mantissa length.
VSQUANT_MANTISSA_BITS = 4


def _bfp_array_transform(config: BfpConfig):
    def transform(activation: np.ndarray) -> np.ndarray:
        flat = activation.reshape(-1, activation.shape[-1])
        tensor = quantize(flat, config)
        scale_exp = tensor.shared_exponent + 1 - config.mantissa_bits
        magnitude = np.ldexp(tensor.mantissa.astype(np.float64), scale_exp[:, None])
        signed = np.where(tensor.sign == 1, -magnitude, magnitude)
        return (
            from_groups(signed, tensor.layout).astype(np.float32).reshape(
                activation.shape
            )
        )

    return transform


def fp16_quantizer() -> Quantizer:
    """Round activations through FP16 (the reference datapath)."""

    def quantize_fn(kind: TensorKind, activation: np.ndarray) -> np.ndarray:
        return fp16.round_trip(activation)

    return quantize_fn


def bfp_quantizer(
    mantissa_bits: int,
    group_size: int | None = ANDA_GROUP_SIZE,
    rounding: str = "truncate",
) -> Quantizer:
    """Uniform BFP quantizer for every tensor kind (Fig. 5/6 sweeps)."""
    transform = _bfp_array_transform(
        BfpConfig(mantissa_bits=mantissa_bits, group_size=group_size, rounding=rounding)
    )

    def quantize_fn(kind: TensorKind, activation: np.ndarray) -> np.ndarray:
        return transform(activation)

    return quantize_fn


def figna_quantizer() -> Quantizer:
    """FIGNA-style long-mantissa BFP conversion at compute time."""
    return bfp_quantizer(FIGNA_MANTISSA_BITS)


def vsquant_quantizer() -> Quantizer:
    """VS-Quant's 4-bit format applied without retraining."""
    return bfp_quantizer(VSQUANT_MANTISSA_BITS)


def anda_combination_quantizer(combination: PrecisionCombination) -> Quantizer:
    """Anda per-tensor-type quantizer (re-export for scheme symmetry)."""
    return anda_quantizer(combination)
