"""Shared-microexponent (MX-style) activation formats, as an extension.

The paper's related work ([14], "With shared microexponents, a little
shifting goes a long way", ISCA'23) proposes a middle ground between
per-element FP and coarse-grained BFP: a *two-level* exponent
hierarchy.  A coarse exponent is shared by a large group; small
sub-groups carry a few extra "microexponent" bits that locally shift
the sub-group's alignment, recovering most of the precision lost to a
single shared scale at a fraction of per-element exponent storage.

This module implements that format family over the same FP16 codec the
Anda implementation uses, so both can be compared head-to-head on

* round-trip error at equal storage budget (the MX ablation bench),
* storage accounting (:meth:`MxTensor.storage_bits`),
* drop-in fake quantization for LLM accuracy sweeps
  (:func:`fake_quantize_mx`).

The comparison motivates Anda's choice: variable *mantissa length*
spends its bits where sensitivity requires, while microexponents spend
them on *alignment* — two orthogonal axes the extension bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import fp16
from repro.core.groups import GroupLayout, from_groups, to_groups
from repro.errors import FormatError

#: Hierarchy presets from the microexponent paper's MX family (group,
#: subgroup, micro bits) — element mantissa bits stay a free parameter.
MX_PRESETS: dict[str, tuple[int, int, int]] = {
    "mx4": (64, 2, 1),
    "mx6": (64, 4, 1),
    "mx9": (64, 8, 2),
}


@dataclass(frozen=True)
class MxConfig:
    """Parameters of a two-level shared-microexponent conversion.

    Attributes:
        mantissa_bits: per-element significand bits (hidden bit
            included), 1..16 — same convention as
            :class:`repro.core.bfp.BfpConfig`.
        group_size: elements sharing the coarse exponent.
        subgroup_size: elements sharing one microexponent; must divide
            ``group_size``.
        micro_bits: width of the per-subgroup exponent offset field;
            offsets saturate at ``2**micro_bits - 1``.
    """

    mantissa_bits: int = 4
    group_size: int = 64
    subgroup_size: int = 2
    micro_bits: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.mantissa_bits <= 16:
            raise FormatError(
                f"mantissa_bits must be in [1, 16], got {self.mantissa_bits}"
            )
        if self.group_size < 1 or self.subgroup_size < 1:
            raise FormatError("group and subgroup sizes must be >= 1")
        if self.group_size % self.subgroup_size != 0:
            raise FormatError(
                f"subgroup size {self.subgroup_size} must divide group size "
                f"{self.group_size}"
            )
        if not 0 <= self.micro_bits <= 4:
            raise FormatError(f"micro_bits must be in [0, 4], got {self.micro_bits}")

    @property
    def subgroups_per_group(self) -> int:
        return self.group_size // self.subgroup_size

    @property
    def max_offset(self) -> int:
        return (1 << self.micro_bits) - 1

    @classmethod
    def preset(cls, name: str, mantissa_bits: int = 4) -> "MxConfig":
        """Build a config from an :data:`MX_PRESETS` hierarchy name."""
        try:
            group, subgroup, micro = MX_PRESETS[name]
        except KeyError:
            raise FormatError(
                f"unknown MX preset {name!r}; known: {sorted(MX_PRESETS)}"
            ) from None
        return cls(mantissa_bits, group, subgroup, micro)


@dataclass
class MxTensor:
    """A tensor quantized to the two-level microexponent format.

    Attributes:
        sign: ``(n_groups, group_size)`` in {0, 1}.
        mantissa: ``(n_groups, group_size)`` unsigned magnitudes.
        shared_exponent: ``(n_groups,)`` coarse exponents.
        micro_offset: ``(n_groups, subgroups_per_group)`` unsigned
            offsets subtracted from the coarse exponent per subgroup.
        config / layout: conversion parameters and shape metadata.
    """

    sign: np.ndarray
    mantissa: np.ndarray
    shared_exponent: np.ndarray
    micro_offset: np.ndarray
    config: MxConfig
    layout: GroupLayout

    @property
    def shape(self) -> tuple[int, ...]:
        return self.layout.shape

    @property
    def n_groups(self) -> int:
        return self.layout.n_groups

    def subgroup_exponents(self) -> np.ndarray:
        """Effective per-subgroup exponents after the micro shift."""
        return self.shared_exponent[:, None] - self.micro_offset

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float32 tensor this encoding represents."""
        config = self.config
        sub_exp = np.repeat(self.subgroup_exponents(), config.subgroup_size, axis=1)
        scale_exp = sub_exp + 1 - config.mantissa_bits
        magnitude = np.ldexp(self.mantissa.astype(np.float64), scale_exp)
        signed = np.where(self.sign == 1, -magnitude, magnitude)
        return from_groups(signed, self.layout).astype(np.float32)

    def storage_bits(self) -> int:
        """Element payload + coarse exponents + microexponent fields."""
        config = self.config
        per_element = 1 + config.mantissa_bits
        n_elements = self.layout.n_groups * config.group_size
        coarse = 8 * self.layout.n_groups
        micro = config.micro_bits * config.subgroups_per_group * self.layout.n_groups
        return per_element * n_elements + coarse + micro

    def bits_per_element(self) -> float:
        """Amortized storage cost per (padded) element."""
        return self.storage_bits() / (self.layout.n_groups * self.config.group_size)


def quantize_mx(values: np.ndarray, config: MxConfig) -> MxTensor:
    """Convert a finite tensor to the microexponent format.

    The coarse exponent is the group maximum (as in BFP); each
    subgroup's offset is the gap between the coarse exponent and the
    subgroup's own maximum, saturated to the microexponent field width.
    Elements align to their *subgroup* exponent, so small-magnitude
    subgroups keep up to ``max_offset`` extra bits of precision.
    """
    grouped, layout = to_groups(values, config.group_size)
    sign, exponent, significand = fp16.decompose(grouped)

    n_groups = layout.n_groups
    sub_shape = (n_groups, config.subgroups_per_group, config.subgroup_size)
    sub_exponent = exponent.reshape(sub_shape)
    sub_max = sub_exponent.max(axis=2)
    shared = sub_max.max(axis=1)

    offset = np.minimum(shared[:, None] - sub_max, config.max_offset)
    # A subgroup of all zeros has the ZERO_EXPONENT sentinel as its max;
    # clamp its offset to the saturation value for a canonical encoding.
    offset = np.where(
        sub_max == fp16.ZERO_EXPONENT, config.max_offset, offset
    ).astype(np.int64)

    effective = shared[:, None, None] - offset[:, :, None]
    shift = np.where(
        significand.reshape(sub_shape) > 0,
        effective - sub_exponent,
        0,
    )
    widened = significand.reshape(sub_shape).astype(np.int64) << max(
        config.mantissa_bits - fp16.SIGNIFICAND_BITS, 0
    )
    right = shift + max(fp16.SIGNIFICAND_BITS - config.mantissa_bits, 0)
    right = np.minimum(np.maximum(right, 0), 62)
    mantissa = (widened >> right).reshape(n_groups, config.group_size)
    sign = np.where(mantissa == 0, 0, sign)
    return MxTensor(
        sign=sign.astype(np.int8),
        mantissa=mantissa.astype(np.int32),
        shared_exponent=shared.astype(np.int32),
        micro_offset=offset.astype(np.int8),
        config=config,
        layout=layout,
    )


def fake_quantize_mx(values: np.ndarray, config: MxConfig) -> np.ndarray:
    """Quantize-dequantize through the MX format (LLM hook drop-in)."""
    return quantize_mx(np.asarray(values), config).dequantize()


def mx_error(values: np.ndarray, config: MxConfig) -> float:
    """Root-mean-square round-trip error of one MX conversion."""
    arr = np.asarray(values, dtype=np.float32)
    return float(np.sqrt(np.mean((arr - fake_quantize_mx(arr, config)) ** 2)))
