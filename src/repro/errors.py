"""Exception hierarchy for the Anda reproduction library.

Every error raised deliberately by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures without
intercepting unrelated exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FormatError(ReproError):
    """Invalid numeric-format configuration or non-encodable values.

    Raised, for example, when a tensor containing NaN/Inf is handed to a
    block-floating-point encoder, or when a mantissa length lies outside
    the representable range of the Anda format.
    """


class SearchError(ReproError):
    """Adaptive precision search received inconsistent inputs."""


class ModelError(ReproError):
    """LLM substrate misuse (bad config, shape mismatch, missing cache)."""


class RequestError(ModelError):
    """A client request the serving front end rejects at submission.

    Raised for invalid :class:`repro.serve.SamplingParams` (e.g.
    ``max_new_tokens <= 0``), empty prompts, out-of-vocab token ids, or
    a request too large for the engine's KV pool — always *before* the
    request enters the scheduler, so a bad request can never fail deep
    in a later step and vanish.  Subclasses :class:`ModelError` so
    pre-redesign ``except ModelError`` callers keep working.
    """


class RequestAbortedError(ModelError):
    """The result of an aborted request was demanded.

    Raised by :meth:`repro.serve.RequestHandle.result` when the request
    was cancelled via ``abort()`` — an aborted request has no final
    token array; its partial tokens remain readable on the handle.
    Subclasses :class:`ModelError` so the serving layer's fault
    taxonomy (every serve/ raise is a ModelError) holds uniformly.
    """


class RequestFailedError(ModelError):
    """The result of a failed request was demanded.

    Raised by :meth:`repro.serve.RequestHandle.result` when the request
    reached the terminal ``FAILED`` status — quarantined after a
    permanent fault, retries exhausted, past its deadline, or shed at
    admission under KV pressure.  Carries the original fault (also the
    ``__cause__``) so callers can distinguish failure classes; the
    partial tokens remain readable on the handle.
    """

    def __init__(self, message: str, fault: BaseException | None = None) -> None:
        super().__init__(message)
        #: The original exception that failed the request (an
        #: :class:`~repro.serve.faults.InjectedFault`,
        #: :class:`DeadlineExceededError`, ...); None when the failure
        #: carried no exception (e.g. load shedding).
        self.fault = fault


class DeadlineExceededError(ModelError):
    """A request outlived its ``SamplingParams.deadline_s`` budget.

    Enforced at step boundaries: the engine sweeps waiting and running
    requests at the start of every step and fails any whose deadline
    has passed, releasing their KV residency.  Stored as the failed
    request's ``failure`` and surfaced through
    :class:`RequestFailedError` by ``RequestHandle.result()``.
    """


class HardwareError(ReproError):
    """Hardware model misuse (bad tiling, unknown architecture, ...)."""
