"""Exception hierarchy for the Anda reproduction library.

Every error raised deliberately by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures without
intercepting unrelated exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FormatError(ReproError):
    """Invalid numeric-format configuration or non-encodable values.

    Raised, for example, when a tensor containing NaN/Inf is handed to a
    block-floating-point encoder, or when a mantissa length lies outside
    the representable range of the Anda format.
    """


class SearchError(ReproError):
    """Adaptive precision search received inconsistent inputs."""


class ModelError(ReproError):
    """LLM substrate misuse (bad config, shape mismatch, missing cache)."""


class HardwareError(ReproError):
    """Hardware model misuse (bad tiling, unknown architecture, ...)."""
