"""Exception hierarchy for the Anda reproduction library.

Every error raised deliberately by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures without
intercepting unrelated exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FormatError(ReproError):
    """Invalid numeric-format configuration or non-encodable values.

    Raised, for example, when a tensor containing NaN/Inf is handed to a
    block-floating-point encoder, or when a mantissa length lies outside
    the representable range of the Anda format.
    """


class SearchError(ReproError):
    """Adaptive precision search received inconsistent inputs."""


class ModelError(ReproError):
    """LLM substrate misuse (bad config, shape mismatch, missing cache)."""


class RequestError(ModelError):
    """A client request the serving front end rejects at submission.

    Raised for invalid :class:`repro.serve.SamplingParams` (e.g.
    ``max_new_tokens <= 0``), empty prompts, out-of-vocab token ids, or
    a request too large for the engine's KV pool — always *before* the
    request enters the scheduler, so a bad request can never fail deep
    in a later step and vanish.  Subclasses :class:`ModelError` so
    pre-redesign ``except ModelError`` callers keep working.
    """


class RequestAbortedError(ReproError):
    """The result of an aborted request was demanded.

    Raised by :meth:`repro.serve.RequestHandle.result` when the request
    was cancelled via ``abort()`` — an aborted request has no final
    token array; its partial tokens remain readable on the handle.
    """


class HardwareError(ReproError):
    """Hardware model misuse (bad tiling, unknown architecture, ...)."""
