"""Conservative intra-package call graph for the hot-path rules.

RPL002 must flag allocation-shaped numpy calls in any function that can
run during ``Engine.step``.  Python has no static dispatch, so we build
a deliberately over-approximate graph:

* ``name(...)`` resolves to every function in the same module whose
  name matches, plus any same-named function explicitly imported from a
  scanned module;
* ``anything.method(...)`` resolves to *every* method named ``method``
  across the scanned package (receiver types are unknown);
* defining a nested function counts as calling it (closures like the
  engine's per-step charging hooks are invoked through local names the
  resolver cannot see).

Over-approximation only ever adds findings, never hides one; the
intentional ones (reference oracles, finish-time assembly) are
grandfathered in ``lint_baseline.json`` with tracking notes.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field


@dataclass(slots=True)
class FunctionInfo:
    """One function or method definition in the scanned package."""

    qualname: str  # "repro.serve.engine:Engine.step"
    name: str  # last component, e.g. "step"
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    calls: list[ast.Call] = field(default_factory=list)
    edges: set[str] = field(default_factory=set)


class CallGraph:
    """Name-based over-approximate call graph over scanned modules."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self._by_name: dict[str, set[str]] = {}
        self._imports: dict[str, dict[str, str]] = {}  # module -> alias -> target

    def add_module(self, module: str, tree: ast.Module) -> None:
        imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = f"{node.module}:{alias.name}"
        self._imports[module] = imports
        self._collect(module, tree, prefix="", parent=None)

    def _collect(
        self,
        module: str,
        node: ast.AST,
        prefix: str,
        parent: FunctionInfo | None,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                info = FunctionInfo(
                    qualname=f"{module}:{qual}",
                    name=child.name,
                    module=module,
                    node=child,
                )
                self.functions[info.qualname] = info
                self._by_name.setdefault(child.name, set()).add(info.qualname)
                if parent is not None:
                    # Defining a nested function counts as calling it.
                    parent.edges.add(info.qualname)
                self._collect_body(info, child)
                self._collect(module, child, prefix=qual, parent=info)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                self._collect(module, child, prefix=qual, parent=parent)
            else:
                self._collect(module, child, prefix=prefix, parent=parent)

    def _collect_body(self, info: FunctionInfo, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs get their own FunctionInfo
            if isinstance(child, ast.Call):
                info.calls.append(child)
            self._collect_body(info, child)

    def resolve(self) -> None:
        """Turn the recorded calls into edges (name-based, conservative)."""
        for info in self.functions.values():
            imports = self._imports.get(info.module, {})
            for call in info.calls:
                func = call.func
                if isinstance(func, ast.Name):
                    # Same-module functions with that name (any nesting).
                    for qual in self._by_name.get(func.id, ()):
                        if self.functions[qual].module == info.module:
                            info.edges.add(qual)
                    target = imports.get(func.id)
                    if target is not None:
                        mod, _, name = target.partition(":")
                        qual = f"{mod}:{name}"
                        if qual in self.functions:
                            info.edges.add(qual)
                elif isinstance(func, ast.Attribute):
                    # Unknown receiver: every scanned method with that name.
                    info.edges.update(self._by_name.get(func.attr, ()))

    def reachable(self, roots: list[str]) -> set[str]:
        seen = set(root for root in roots if root in self.functions)
        queue = deque(seen)
        while queue:
            qual = queue.popleft()
            for edge in self.functions[qual].edges:
                if edge not in seen:
                    seen.add(edge)
                    queue.append(edge)
        return seen
