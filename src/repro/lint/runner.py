"""Scan ``src/repro`` and evaluate every rule against the parsed index."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Baseline, BaselineEntry, Finding
from repro.lint.rules import (
    RULES,
    Module,
    ModuleIndex,
    Rule,
    parse_slots_allowlist,
)

DEFAULT_BASELINE = "lint_baseline.json"
DEFAULT_ALLOWLIST = Path(__file__).with_name("slots_allowlist.txt")


def discover_modules(repo_root: Path) -> list[Module]:
    """Parse every module under ``<repo_root>/src/repro``.

    Paths are recorded relative to ``repo_root`` (``src/repro/...``) so
    findings and baseline keys are stable regardless of where the
    linter is invoked from.
    """
    package_root = repo_root / "src" / "repro"
    modules: list[Module] = []
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(repo_root)
        parts = list(rel.parts[1:])  # drop "src"
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1].removesuffix(".py")
        name = ".".join(parts)
        source = path.read_text()
        modules.append(
            Module(
                name=name,
                path=rel.as_posix(),
                tree=ast.parse(source, filename=str(path)),
                lines=source.splitlines(),
            )
        )
    return modules


@dataclass(slots=True)
class LintResult:
    findings: list[Finding]
    new: list[Finding]
    grandfathered: list[Finding]
    stale_baseline: list[BaselineEntry]
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale_baseline and not self.errors

    def to_json(self) -> dict:
        def finding_dict(finding: Finding) -> dict:
            return {
                "code": finding.code,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "context": finding.context,
                "key": finding.key,
            }

        return {
            "ok": self.ok,
            "findings": [finding_dict(f) for f in self.findings],
            "new": [finding_dict(f) for f in self.new],
            "grandfathered": [finding_dict(f) for f in self.grandfathered],
            "stale_baseline": [
                {"key": entry.key, "note": entry.note} for entry in self.stale_baseline
            ],
            "errors": list(self.errors),
        }


def run_lint(
    repo_root: Path,
    baseline: Baseline | None = None,
    rules: tuple[Rule, ...] = RULES,
    allowlist_path: Path | None = None,
) -> LintResult:
    modules = discover_modules(repo_root)
    allowlist = parse_slots_allowlist(
        allowlist_path if allowlist_path is not None else DEFAULT_ALLOWLIST
    )
    index = ModuleIndex(modules=modules, slots_allowlist=allowlist)
    findings: list[Finding] = []
    errors: list[str] = []
    for rule in rules:
        try:
            findings.extend(rule.check(index))
        except Exception as exc:  # a crashing rule must fail the run, not hide
            errors.append(f"{rule.code} crashed: {type(exc).__name__}: {exc}")
    findings.sort(key=lambda f: (f.path, f.line, f.code, f.message))
    if baseline is None:
        baseline = Baseline()
    new, grandfathered, stale = baseline.split(findings)
    return LintResult(
        findings=findings,
        new=new,
        grandfathered=grandfathered,
        stale_baseline=stale,
        errors=errors,
    )
