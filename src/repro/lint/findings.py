"""Finding and baseline primitives for repro.lint.

A :class:`Finding` is one rule violation at one source location.  The
committed ``lint_baseline.json`` grandfathers intentional findings
(reference oracles, finish-time buffers) so the run stays at exit 0
while the ratchet guarantees the set can only shrink: a *new* finding
fails the run, and a baseline entry that no longer matches anything
("stale") also fails until it is deleted.

Baseline entries are keyed by ``(code, path, context, message)`` — no
line numbers — so unrelated edits to a file do not invalidate them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str  # posix path relative to the scan root's parent (e.g. src/...)
    line: int
    message: str
    context: str = ""  # enclosing qualname ("Engine.step") or "<module>"

    @property
    def key(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.code}|{self.path}|{self.context}|{self.message}"

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        ctx = f" [{self.context}]" if self.context else ""
        return f"{where}: {self.code} {self.message}{ctx}"


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    key: str
    note: str = ""


@dataclass(slots=True)
class Baseline:
    """The committed set of grandfathered findings (shrink-only)."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        raw = json.loads(path.read_text())
        entries = [
            BaselineEntry(key=item["key"], note=item.get("note", ""))
            for item in raw.get("findings", [])
        ]
        return cls(entries=entries)

    def keys(self) -> set[str]:
        return {entry.key for entry in self.entries}

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition into (new, grandfathered, stale-baseline-entries)."""
        known = self.keys()
        new = [f for f in findings if f.key not in known]
        old = [f for f in findings if f.key in known]
        seen = {f.key for f in findings}
        stale = [entry for entry in self.entries if entry.key not in seen]
        return new, old, stale
