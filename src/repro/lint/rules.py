"""The repo-specific rules (RPL001–RPL011).

Each rule carries a one-line rationale and a pointer to the invariant
it guards (the "Enforced invariants" section of ``serve/README.md``
maps codes to the PRs that introduced them).  Rules operate on a
:class:`ModuleIndex` — every module under ``src/repro`` parsed once —
so cross-module rules (call-graph reachability, import cycles, the
``__all__`` contract) see the whole package.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.callgraph import CallGraph
from repro.lint.findings import Finding

# Modules whose per-token cost defines serving latency.  RPL001/002/003
# apply here: no wall clocks, no allocation-shaped numpy, __slots__.
HOT_PATH_MODULES = (
    "repro.serve.engine",
    "repro.llm.attention",
    "repro.llm.transformer",
)
HOT_PATH_PREFIXES = ("repro.serve.kvpool",)

# Modules allowed to reference the deprecated kv_mode / kv_mantissa_bits /
# serve_batch spellings: the shims themselves plus the package __init__
# that re-exports serve_batch for backward compatibility.
SHIM_MODULES = frozenset(
    {
        "repro.serve.engine",  # EngineConfig kv_mode -> KVFormat shim
        "repro.serve.llm",  # serve_batch -> LLM.generate shim
        "repro.serve",  # re-exports serve_batch
    }
)

STATS_GLOBALS = frozenset({"HOT_PATH_STATS", "ATTENTION_STATS"})
STATS_HOME = "repro.llm.attention"

ALLOC_NP_CALLS = frozenset({"concatenate", "append", "vstack", "hstack"})
NUMPY_ALIASES = frozenset({"np", "numpy"})
MATMUL_CALLS = frozenset({"matmul", "dot", "einsum"})


def is_hot_module(name: str) -> bool:
    return name in HOT_PATH_MODULES or name.startswith(HOT_PATH_PREFIXES)


@dataclass(slots=True)
class Module:
    """One parsed source file."""

    name: str  # dotted module name, e.g. "repro.serve.engine"
    path: str  # posix path recorded in findings, e.g. "src/repro/serve/engine.py"
    tree: ast.Module
    lines: list[str]


@dataclass(slots=True)
class ModuleIndex:
    modules: list[Module]
    slots_allowlist: dict[str, str] = field(default_factory=dict)

    def get(self, name: str) -> Module | None:
        for module in self.modules:
            if module.name == name:
                return module
        return None


def parse_slots_allowlist(path: Path) -> dict[str, str]:
    """``module:Class  # reason`` lines -> {"module:Class": "reason"}."""
    allowlist: dict[str, str] = {}
    if not path.exists():
        return allowlist
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        entry, _, reason = line.partition("#")
        entry = entry.strip()
        if entry:
            allowlist[entry] = reason.strip()
    return allowlist


class _QualnameVisitor:
    """Iterate (node, enclosing-qualname) pairs for a module tree."""

    @staticmethod
    def walk(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
        stack: list[tuple[ast.AST, str]] = [(tree, "<module>")]
        while stack:
            node, qual = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    child_qual = (
                        child.name if qual == "<module>" else f"{qual}.{child.name}"
                    )
                else:
                    child_qual = qual
                yield child, child_qual
                stack.append((child, child_qual))


def _walk_with_context(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    return _QualnameVisitor.walk(tree)


class Rule:
    """Base class: code, one-line rationale, invariant pointer, check()."""

    code = "RPL000"
    title = ""
    rationale = ""
    invariant = ""
    explain = ""

    def check(self, index: ModuleIndex) -> list[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str, context: str) -> Finding:
        return Finding(
            code=self.code,
            path=module.path,
            line=getattr(node, "lineno", 1),
            message=message,
            context=context,
        )


class NoWallClock(Rule):
    code = "RPL001"
    title = "no wall-clock calls in hot-path modules"
    rationale = "step timing must come from the tracer's perf_counter, never the wall clock"
    invariant = "PR 7 telemetry: serve/README.md 'Telemetry' (monotonic step phases)"
    explain = (
        "Hot-path modules (engine.py, attention.py, transformer.py, kvpool/*)\n"
        "may not call time.time(), datetime.now()/utcnow()/today() or\n"
        "date.today().  Wall clocks jump under NTP slew and have ~ms\n"
        "granularity; every duration the serving stack reports is measured\n"
        "with time.perf_counter() through the step tracer so Chrome traces\n"
        "and ITL percentiles stay monotonic and comparable across engines."
    )

    _DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

    def check(self, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        for module in index.modules:
            if not is_hot_module(module.name):
                continue
            bare_time = any(
                isinstance(node, ast.ImportFrom)
                and node.module == "time"
                and any(alias.name == "time" for alias in node.names)
                for node in ast.walk(module.tree)
            )
            for node, qual in _walk_with_context(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                spelled = None
                if isinstance(func, ast.Attribute):
                    base = func.value
                    if isinstance(base, ast.Name) and base.id == "time" and func.attr == "time":
                        spelled = "time.time()"
                    elif func.attr in self._DATETIME_ATTRS:
                        root = base
                        while isinstance(root, ast.Attribute):
                            root = root.value
                        if isinstance(root, ast.Name) and root.id in ("datetime", "date"):
                            spelled = f"{root.id}.{func.attr}()"
                elif isinstance(func, ast.Name) and func.id == "time" and bare_time:
                    spelled = "time()"
                if spelled is not None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"wall-clock call {spelled} in hot-path module "
                            "(use the tracer's perf_counter)",
                            qual,
                        )
                    )
        return findings


class NoHotPathAllocation(Rule):
    code = "RPL002"
    title = "no allocation-shaped numpy calls on the decode hot path"
    rationale = "the PR 5 zero-copy rebuild made Engine.step O(new tokens); one stray concatenate reverts it"
    invariant = "PR 5 zero-copy: serve/README.md 'Decode hot path' (preallocated buffers, in-place views)"
    explain = (
        "Functions marked '# hot-path' or reachable from Engine.step via a\n"
        "conservative intra-package call graph may not call np.concatenate /\n"
        "np.append / np.vstack / np.hstack, nor .astype() on a stored buffer\n"
        "attribute (which copies the whole thing).  The decode hot path works\n"
        "on preallocated capacity-doubling KV buffers and persistent gather\n"
        "scratch; per-token reallocation is exactly what PR 5 removed (2.2-3.4x\n"
        "step latency).  The call graph is name-based and over-approximate by\n"
        "design -- intentional findings (reference oracles used only by parity\n"
        "tests, finish-time result assembly) are grandfathered in\n"
        "lint_baseline.json with a tracking note each."
    )

    ROOTS = ["repro.serve.engine:Engine.step"]

    def check(self, index: ModuleIndex) -> list[Finding]:
        graph = CallGraph()
        for module in index.modules:
            graph.add_module(module.name, module.tree)
        graph.resolve()

        roots = list(self.ROOTS)
        # Functions explicitly marked hot: "# hot-path" on the def line or
        # the line directly above it.
        for module in index.modules:
            for info in graph.functions.values():
                if info.module != module.name:
                    continue
                def_line = info.node.lineno
                for lineno in (def_line, def_line - 1):
                    if 1 <= lineno <= len(module.lines) and "# hot-path" in module.lines[lineno - 1]:
                        roots.append(info.qualname)
                        break
        reachable = graph.reachable(roots)

        findings: list[Finding] = []
        modules_by_name = {module.name: module for module in index.modules}
        for qual in sorted(reachable):
            info = graph.functions[qual]
            module = modules_by_name[info.module]
            context = qual.split(":", 1)[1]
            for call in info.calls:
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in NUMPY_ALIASES
                    and func.attr in ALLOC_NP_CALLS
                ):
                    findings.append(
                        self.finding(
                            module,
                            call,
                            f"allocation-shaped call np.{func.attr} reachable "
                            "from Engine.step (zero-copy hot path)",
                            context,
                        )
                    )
                elif func.attr == "astype" and isinstance(base, ast.Attribute):
                    findings.append(
                        self.finding(
                            module,
                            call,
                            f"full-buffer .astype() on attribute '{base.attr}' "
                            "reachable from Engine.step (zero-copy hot path)",
                            context,
                        )
                    )
        return findings


class HotClassesDeclareSlots(Rule):
    code = "RPL003"
    title = "classes in hot-path modules declare __slots__"
    rationale = "per-instance dicts on hot objects cost memory and attribute-lookup time at serving scale"
    invariant = "PR 5 zero-copy: serve/README.md 'Decode hot path' (slotted per-request state)"
    explain = (
        "Every class defined in a hot-path module must declare __slots__\n"
        "(directly or via @dataclass(slots=True)).  Exception classes are\n"
        "exempt, and once-per-engine objects with documented reasons live in\n"
        "src/repro/lint/slots_allowlist.txt -- the allowlist is part of the\n"
        "rule: removing an entry re-arms enforcement for that class."
    )

    def check(self, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        for module in index.modules:
            if not is_hot_module(module.name):
                continue
            for node, qual in _walk_with_context(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if self._is_exception(node) or self._has_slots(node):
                    continue
                entry = f"{module.name}:{node.name}"
                if entry in index.slots_allowlist:
                    continue
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"class {node.name} in hot-path module lacks __slots__ "
                        "(add it, or allowlist with a reason)",
                        qual,
                    )
                )
        return findings

    @staticmethod
    def _is_exception(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
            if name.endswith(("Error", "Exception", "Warning")):
                return True
        return False

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        return False


class StatsScopedToAttention(Rule):
    code = "RPL004"
    title = "module-global stats touched only inside attention's StatScope machinery"
    rationale = "the PR 7 counter-bleed fix routes all stats through contextvar scopes; direct global access reintroduces cross-engine bleed"
    invariant = "PR 7 scoping: serve/README.md 'Telemetry' (contextvar-scoped hot-path stats)"
    explain = (
        "HOT_PATH_STATS and ATTENTION_STATS are attention.py's module-global\n"
        "fallback scopes.  Engine code reading or writing them directly sees\n"
        "(and corrupts) counters from whichever engine last ran -- the exact\n"
        "cross-engine bleed PR 7 fixed with contextvar-scoped StatScope.  Use\n"
        "stats_scope() / the engine's telemetry registry instead."
    )

    def check(self, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        for module in index.modules:
            if module.name == STATS_HOME:
                continue
            for node, qual in _walk_with_context(module.tree):
                name = None
                if isinstance(node, ast.Name) and node.id in STATS_GLOBALS:
                    name = node.id
                elif isinstance(node, ast.Attribute) and node.attr in STATS_GLOBALS:
                    name = node.attr
                elif isinstance(node, ast.ImportFrom) and any(
                    alias.name in STATS_GLOBALS for alias in node.names
                ):
                    name = next(
                        alias.name for alias in node.names if alias.name in STATS_GLOBALS
                    )
                if name is not None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"direct access to module-global {name} outside "
                            "attention's StatScope machinery (use stats_scope())",
                            qual,
                        )
                    )
        return findings


class DeprecatedKnobsStayInShims(Rule):
    code = "RPL005"
    title = "deprecated kv_mode / kv_mantissa_bits / serve_batch only in shim modules"
    rationale = "the deprecation shims exist to contain the old spellings; new internal callers would make them permanent"
    invariant = "PR 8 KVFormat: serve/README.md 'KV formats' (kv_mode shim), PR 4 (serve_batch shim)"
    explain = (
        "kv_mode= / kv_mantissa_bits= (replaced by KVFormat) and serve_batch\n"
        "(replaced by LLM.generate) are DeprecationWarning shims.  Only the\n"
        "shim modules themselves (serve/engine.py's EngineConfig shim,\n"
        "serve/llm.py, and the serve/__init__ re-export) may spell them;\n"
        "everything else in src/repro must use the replacement API so the\n"
        "shims can eventually be deleted in one place."
    )

    _NAMES = frozenset({"serve_batch"})
    _ATTRS = frozenset({"kv_mode", "kv_mantissa_bits", "serve_batch"})

    def check(self, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        for module in index.modules:
            if module.name in SHIM_MODULES:
                continue
            for node, qual in _walk_with_context(module.tree):
                spelled = None
                if isinstance(node, ast.Call):
                    for kw in node.keywords:
                        if kw.arg in ("kv_mode", "kv_mantissa_bits"):
                            spelled = f"{kw.arg}="
                            break
                elif isinstance(node, ast.Attribute) and node.attr in self._ATTRS:
                    spelled = f".{node.attr}"
                elif isinstance(node, ast.Name) and node.id in self._NAMES:
                    spelled = node.id
                elif isinstance(node, ast.ImportFrom) and any(
                    alias.name in self._NAMES for alias in node.names
                ):
                    spelled = "import serve_batch"
                if spelled is not None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"deprecated spelling {spelled} outside its shim module "
                            "(use KVFormat / LLM.generate)",
                            qual,
                        )
                    )
        return findings


class FrozenFieldsOnlyInPostInit(Rule):
    code = "RPL006"
    title = "object.__setattr__ only inside a __post_init__ on self"
    rationale = "frozen specs (SamplingParams, KVFormat, TelemetryConfig) are hashed and shared; back-door mutation breaks prefix signatures and scheduling"
    invariant = "PR 4/8 frozen specs: serve/README.md 'Requests' (immutable per-request params)"
    explain = (
        "The frozen dataclasses are mutated via object.__setattr__ exactly\n"
        "once: inside their own __post_init__, to normalize fields before the\n"
        "instance escapes.  Anywhere else it silently bypasses frozen=True on\n"
        "objects the engine has already hashed into prefix-cache signatures\n"
        "and scheduler plans.  This rule flags any object.__setattr__ call\n"
        "outside a __post_init__, or one whose target is not self."
    )

    def check(self, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        for module in index.modules:
            for node, qual in _walk_with_context(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "object"
                ):
                    continue
                in_post_init = qual.split(".")[-1] == "__post_init__"
                on_self = bool(
                    node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == "self"
                )
                if not (in_post_init and on_self):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "object.__setattr__ outside its own __post_init__ "
                            "(frozen specs are immutable once constructed)",
                            qual,
                        )
                    )
        return findings


class NoSwallowedExceptions(Rule):
    code = "RPL007"
    title = "no bare except / blanket except without re-raise in serve/"
    rationale = "a swallowed exception mid-step leaves engine state (block refcounts, request queues) silently corrupted"
    invariant = "PR 2/4 rollback paths: serve/README.md 'Preemption & abort' (failures must propagate or roll back)"
    explain = (
        "src/repro/serve may not contain bare 'except:' handlers, nor\n"
        "'except Exception:' / 'except BaseException:' handlers that do not\n"
        "re-raise.  The engine's mid-step failure contract is\n"
        "rollback-then-reraise (block refcounts, wave queues, handle states\n"
        "are restored before the exception propagates); a blanket handler\n"
        "that absorbs the failure instead — whether its body is 'pass' or\n"
        "does real work — leaves the pool and scheduler silently\n"
        "inconsistent.  Blanket handlers containing a 'raise' remain fine;\n"
        "handlers naming a specific exception class are the engine's own\n"
        "failure-semantics business (RPL011 covers what they may raise)."
    )

    def check(self, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        for module in index.modules:
            if not module.name.startswith("repro.serve"):
                continue
            for node, qual in _walk_with_context(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "bare 'except:' in serve/ (name the exception; "
                            "mid-step failures must roll back, not vanish)",
                            qual,
                        )
                    )
                    continue
                type_name = (
                    node.type.attr
                    if isinstance(node.type, ast.Attribute)
                    else getattr(node.type, "id", "")
                )
                if type_name not in ("Exception", "BaseException"):
                    continue
                swallows = all(
                    isinstance(stmt, ast.Pass)
                    or (
                        isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Constant)
                        and stmt.value.value is Ellipsis
                    )
                    for stmt in node.body
                )
                reraises = any(
                    isinstance(sub, ast.Raise)
                    for stmt in node.body
                    for sub in ast.walk(stmt)
                )
                if swallows:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"'except {type_name}: pass' swallows mid-step failures "
                            "(roll back and re-raise instead)",
                            qual,
                        )
                    )
                elif not reraises:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"blanket 'except {type_name}:' without a re-raise "
                            "absorbs unknown failure classes (roll back what "
                            "you can, then propagate)",
                            qual,
                        )
                    )
        return findings


class AllMatchesBindings(Rule):
    code = "RPL008"
    title = "serve.__all__ exactly matches the bound public names"
    rationale = "a drifted __all__ either advertises imports that fail or hides supported API; this replaces the ad-hoc CI import check"
    invariant = "PR 1 packaging: serve/__init__.py is the public serving surface"
    explain = (
        "repro.serve.__init__ must export exactly what it binds: every entry\n"
        "of __all__ is a name actually imported/defined at module top level,\n"
        "and every public (non-underscore) top-level binding appears in\n"
        "__all__.  This statically subsumes the old bench-smoke 'import lint'\n"
        "step that imported the package and hasattr-checked each export."
    )

    TARGET = "repro.serve"

    def check(self, index: ModuleIndex) -> list[Finding]:
        module = index.get(self.TARGET)
        if module is None:
            return []
        declared: list[str] | None = None
        bound: set[str] = set()
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__" and isinstance(stmt, ast.Assign):
                            value = stmt.value
                            if isinstance(value, (ast.List, ast.Tuple)):
                                declared = [
                                    elt.value
                                    for elt in value.elts
                                    if isinstance(elt, ast.Constant)
                                    and isinstance(elt.value, str)
                                ]
                        else:
                            bound.add(target.id)
        findings: list[Finding] = []
        public = {name for name in bound if not name.startswith("_")}
        if declared is None:
            if public:
                findings.append(
                    self.finding(
                        module,
                        module.tree,
                        "serve/__init__.py binds public names but has no __all__ list",
                        "<module>",
                    )
                )
            return findings
        declared_set = set(declared)
        for name in sorted(declared_set - bound):
            findings.append(
                self.finding(
                    module,
                    module.tree,
                    f"__all__ entry '{name}' is not bound at top level of serve/__init__",
                    "<module>",
                )
            )
        for name in sorted(public - declared_set):
            findings.append(
                self.finding(
                    module,
                    module.tree,
                    f"public top-level name '{name}' missing from serve/__init__.__all__",
                    "<module>",
                )
            )
        if len(declared) != len(declared_set):
            findings.append(
                self.finding(
                    module, module.tree, "__all__ contains duplicate entries", "<module>"
                )
            )
        return findings


class NoImportCycles(Rule):
    code = "RPL009"
    title = "no import cycles between repro modules"
    rationale = "import-time cycles make module initialization order-dependent; the one historical cycle was broken with a lazy accessor, which stays the allowed pattern"
    invariant = "PR 8 formats: kv_quant's lazy _mx_module() accessor is the documented cycle break"
    explain = (
        "The top-level (import-time) module graph of src/repro must stay\n"
        "acyclic.  Function-level lazy imports -- the _mx_module() pattern\n"
        "that broke the kv_quant <-> mx cycle -- are deliberately not edges:\n"
        "they run after both modules initialize, which is exactly why that\n"
        "pattern is the sanctioned break.  'if TYPE_CHECKING:' imports are\n"
        "also excluded (they never execute at runtime), and importing a\n"
        "sibling *submodule* through its package (from repro.core import\n"
        "fp16) is an edge to the submodule, not the package __init__."
    )

    def check(self, index: ModuleIndex) -> list[Finding]:
        names = {module.name for module in index.modules}
        graph: dict[str, set[str]] = {name: set() for name in names}
        for module in index.modules:
            for target in self._top_level_imports(module):
                resolved = self._resolve(target, names)
                if resolved is not None and resolved != module.name:
                    graph[module.name].add(resolved)
        findings: list[Finding] = []
        for cycle in self._cycles(graph):
            anchor = index.get(cycle[0])
            if anchor is None:
                continue
            chain = " -> ".join([*cycle, cycle[0]])
            findings.append(
                self.finding(
                    anchor,
                    anchor.tree,
                    f"import cycle: {chain} (break it with a lazy function-level "
                    "import like kv_quant._mx_module)",
                    "<module>",
                )
            )
        return findings

    @staticmethod
    def _top_level_imports(module: Module) -> list[str]:
        """Runtime import targets: module body + top-level try blocks,
        excluding `if TYPE_CHECKING:` bodies."""
        targets: list[str] = []
        stmts: list[ast.stmt] = list(module.tree.body)
        while stmts:
            stmt = stmts.pop()
            if isinstance(stmt, ast.Try):
                stmts.extend(stmt.body)
                for handler in stmt.handlers:
                    stmts.extend(handler.body)
            elif isinstance(stmt, ast.Import):
                targets.extend(alias.name for alias in stmt.names)
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.level:
                    parts = module.name.split(".")
                    # level=1 from a module means its parent package.
                    base = ".".join(parts[: len(parts) - stmt.level])
                    prefix = f"{base}.{stmt.module}" if stmt.module else base
                else:
                    prefix = stmt.module or ""
                for alias in stmt.names:
                    targets.append(f"{prefix}.{alias.name}" if prefix else alias.name)
        return [t for t in targets if t]

    @staticmethod
    def _resolve(target: str, names: set[str]) -> str | None:
        # `from repro.x import y` may name a submodule (repro.x.y) or an
        # attribute of repro.x; prefer the deepest scanned module.
        candidate = target
        while candidate:
            if candidate in names:
                return candidate
            candidate = candidate.rpartition(".")[0]
        return None

    @staticmethod
    def _cycles(graph: dict[str, set[str]]) -> list[list[str]]:
        # Tarjan SCC; report components with >1 node (or a self-edge).
        index_counter = [0]
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        number: dict[str, int] = {}
        on_stack: set[str] = set()
        components: list[list[str]] = []

        def strongconnect(v: str) -> None:
            number[v] = lowlink[v] = index_counter[0]
            index_counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in sorted(graph[v]):
                if w not in number:
                    strongconnect(w)
                    lowlink[v] = min(lowlink[v], lowlink[w])
                elif w in on_stack:
                    lowlink[v] = min(lowlink[v], number[w])
            if lowlink[v] == number[v]:
                component: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                if len(component) > 1 or v in graph[v]:
                    components.append(sorted(component))

        for node in sorted(graph):
            if node not in number:
                strongconnect(node)
        return components


class MatmulsRouteThroughAttention(Rule):
    code = "RPL010"
    title = "no raw matmuls in serve/ (lane discipline)"
    rationale = "decode-shaped GeMMs must go through BucketedAttention/_attention_core so the bitwise M=1 vs M>=2 OpenBLAS lane split is preserved"
    invariant = "PR 6 lane discipline: serve/README.md 'Grouped attention' (bitwise kernel-lane contract)"
    explain = (
        "src/repro/serve orchestrates; repro.llm.attention computes.  A raw\n"
        "@ / np.matmul / np.dot / np.einsum on decode-shaped operands inside\n"
        "serve/ would pick OpenBLAS kernels by shape, silently crossing the\n"
        "M=1 (GeMV) vs M>=2 (GeMM) lane boundary that PR 6 pinned bitwise.\n"
        "All attention math must flow through BucketedAttention /\n"
        "_attention_core, where lane selection is explicit and parity-tested."
    )

    def check(self, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        for module in index.modules:
            if not module.name.startswith("repro.serve"):
                continue
            for node, qual in _walk_with_context(module.tree):
                spelled = None
                if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                    spelled = "the @ operator"
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in MATMUL_CALLS:
                        spelled = f".{node.func.attr}()"
                if spelled is not None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"raw matmul via {spelled} in serve/ (route through "
                            "BucketedAttention / _attention_core)",
                            qual,
                        )
                    )
        return findings


class RaisesModelErrors(Rule):
    code = "RPL011"
    title = "serve/ raises ModelError subclasses only"
    rationale = "clients catch ReproError/ModelError at the LLM boundary; a stray ValueError from deep in the engine escapes every typed handler"
    invariant = "PR 11 failure semantics: serve/README.md 'Failure semantics' (one fault taxonomy rooted at ModelError)"
    explain = (
        "Every 'raise' in src/repro/serve must raise a subclass of\n"
        "repro.errors.ModelError, so callers can catch the serving stack's\n"
        "entire failure surface with one typed handler and\n"
        "RequestHandle.result() can re-wrap any stored failure as a\n"
        "RequestFailedError.  The member set is computed as a fixpoint over\n"
        "every ClassDef in the package (seeded with ModelError itself), so\n"
        "locally defined fault types count.  Bare 're-raise' statements and\n"
        "raises of lowercase-named variables (e.g. 'raise cls(...)') are\n"
        "not statically resolvable and are skipped."
    )

    SEED = "ModelError"

    @staticmethod
    def _base_names(node: ast.ClassDef) -> list[str]:
        names = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                names.append(base.id)
            elif isinstance(base, ast.Attribute):
                names.append(base.attr)
        return names

    def _members(self, index: ModuleIndex) -> frozenset[str]:
        """Fixpoint: class names transitively based on ModelError."""
        bases_by_class: dict[str, list[str]] = {}
        for module in index.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    bases_by_class.setdefault(node.name, []).extend(
                        self._base_names(node)
                    )
        members = {self.SEED}
        changed = True
        while changed:
            changed = False
            for name, bases in bases_by_class.items():
                if name not in members and any(base in members for base in bases):
                    members.add(name)
                    changed = True
        return frozenset(members)

    def check(self, index: ModuleIndex) -> list[Finding]:
        members = self._members(index)
        findings: list[Finding] = []
        for module in index.modules:
            if not module.name.startswith("repro.serve"):
                continue
            for node, qual in _walk_with_context(module.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                if isinstance(exc, ast.Attribute):
                    name = exc.attr
                elif isinstance(exc, ast.Name):
                    name = exc.id
                else:
                    continue
                if not name[:1].isupper():
                    continue  # a variable holding the class, not a class name
                if name not in members:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"raise {name} in serve/ (not a ModelError subclass; "
                            "clients catch the stack via ModelError)",
                            qual,
                        )
                    )
        return findings


RULES: tuple[Rule, ...] = (
    NoWallClock(),
    NoHotPathAllocation(),
    HotClassesDeclareSlots(),
    StatsScopedToAttention(),
    DeprecatedKnobsStayInShims(),
    FrozenFieldsOnlyInPostInit(),
    NoSwallowedExceptions(),
    AllMatchesBindings(),
    NoImportCycles(),
    MatmulsRouteThroughAttention(),
    RaisesModelErrors(),
)


def get_rule(code: str) -> Rule | None:
    for rule in RULES:
        if rule.code == code.upper():
            return rule
    return None
