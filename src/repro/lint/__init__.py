"""repro.lint — the repo's invariant-enforcing static analysis suite.

Eight serving PRs accumulated a set of load-bearing invariants that
were documented in ``src/repro/serve/README.md`` but enforced only by
code review: bitwise GeMM lane discipline, hot-path allocation purity,
contextvar-scoped telemetry, frozen request/format specs, deprecation
shim boundaries.  This package encodes them as machine-checked rules —
a standalone AST pass over ``src/repro`` with no runtime dependencies
beyond the standard library.

Run it as ``python -m repro.lint``:

* exit 0 — no findings beyond the committed ``lint_baseline.json``
  (grandfathered findings, each carrying a tracking note);
* exit 1 — new findings, or stale baseline entries (the ratchet:
  the baseline may only shrink, so a fixed finding must be removed
  from it).

``python -m repro.lint --explain RPL002`` documents any rule;
``--json`` emits machine-readable findings for CI artifacts.

The rules:

=======  ===========================================================
RPL001   no wall-clock calls in hot-path modules (perf_counter only)
RPL002   no allocation-shaped numpy calls reachable from Engine.step
RPL003   hot-path classes must declare ``__slots__``
RPL004   module-global stats touched only by attention's StatScope
RPL005   deprecated knobs used only inside their shim modules
RPL006   ``object.__setattr__`` only inside ``__post_init__``
RPL007   no bare/blanket exception swallowing in ``serve/``
RPL008   ``serve.__all__`` exactly matches the bound public names
RPL009   no import cycles between ``repro`` modules
RPL010   no raw matmuls in ``serve/`` (lane discipline)
=======  ===========================================================
"""

from repro.lint.findings import Baseline, Finding
from repro.lint.runner import LintResult, run_lint
from repro.lint.rules import RULES, get_rule

__all__ = [
    "RULES",
    "Baseline",
    "Finding",
    "LintResult",
    "get_rule",
    "run_lint",
]
