"""Command-line entry point: ``python -m repro.lint``.

Exit codes: 0 clean (grandfathered findings allowed), 1 new findings or
stale baseline entries or a crashed rule, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TextIO

from repro.lint.findings import Baseline
from repro.lint.runner import DEFAULT_BASELINE, LintResult, run_lint
from repro.lint.rules import RULES, get_rule


def _find_repo_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory containing src/repro."""
    for candidate in (start, *start.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise SystemExit(f"could not locate src/repro above {start}")


def _explain(code: str) -> int:
    rule = get_rule(code)
    if rule is None:
        print(f"unknown rule code: {code}", file=sys.stderr)
        print("known codes:", ", ".join(r.code for r in RULES), file=sys.stderr)
        return 2
    print(f"{rule.code}: {rule.title}")
    print(f"  rationale: {rule.rationale}")
    print(f"  invariant: {rule.invariant}")
    print()
    print(rule.explain)
    return 0


def _report(
    result: LintResult, baseline_path: Path, stream: TextIO = sys.stdout
) -> None:
    def emit(line: str) -> None:
        print(line, file=stream)

    for finding in result.new:
        emit(finding.render())
    for error in result.errors:
        emit(f"error: {error}")
    for entry in result.stale_baseline:
        emit(
            f"stale baseline entry (fixed? delete it from {baseline_path.name}): "
            f"{entry.key}"
        )
    parts = [f"{len(result.findings)} finding(s)"]
    if result.grandfathered:
        parts.append(f"{len(result.grandfathered)} grandfathered")
    if result.new:
        parts.append(f"{len(result.new)} NEW")
    if result.stale_baseline:
        parts.append(f"{len(result.stale_baseline)} stale baseline entr(ies)")
    status = "OK" if result.ok else "FAIL"
    emit(f"repro.lint: {status} — {', '.join(parts)}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Invariant-enforcing static analysis for the repro serving stack.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root (directory containing src/repro); default: walk up from cwd",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline and report every finding as new",
    )
    parser.add_argument(
        "--json",
        type=Path,
        metavar="PATH",
        default=None,
        help="write machine-readable findings to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print the rationale and guarded invariant for a rule code, then exit",
    )
    args = parser.parse_args(argv)

    if args.explain is not None:
        return _explain(args.explain)

    root = args.root if args.root is not None else _find_repo_root(Path.cwd())
    if not (root / "src" / "repro").is_dir():
        print(f"no src/repro under {root}", file=sys.stderr)
        return 2
    baseline_path = (
        args.baseline if args.baseline is not None else root / DEFAULT_BASELINE
    )
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    result = run_lint(root, baseline=baseline)

    report_stream = sys.stdout
    if args.json is not None:
        payload = json.dumps(result.to_json(), indent=2, sort_keys=True)
        if str(args.json) == "-":
            print(payload)
            report_stream = sys.stderr  # keep stdout pure JSON
        else:
            args.json.write_text(payload + "\n")
    _report(result, baseline_path, stream=report_stream)
    return 0 if result.ok else 1
