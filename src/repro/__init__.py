"""repro — reproduction of "Anda: Unlocking Efficient LLM Inference with a
Variable-Length Grouped Activation Data Format" (HPCA 2025).

The package is organized in four layers:

* :mod:`repro.core` — the Anda data format, the bit-plane layout, the
  bit-serial arithmetic, and the adaptive precision combination search.
* :mod:`repro.llm` — a from-scratch numpy Transformer substrate (models,
  training, datasets, perplexity) replacing PyTorch/HuggingFace.
* :mod:`repro.quant` — weight-only quantization plus the activation
  quantization schemes compared in the paper.
* :mod:`repro.hw` — analytical + tile-level models of the Anda
  accelerator and the baseline architectures.
* :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart::

    import numpy as np
    from repro import AndaTensor

    x = np.random.default_rng(0).normal(size=(8, 256)).astype(np.float32)
    encoded = AndaTensor.from_float(x, mantissa_bits=6)
    print(encoded.compression_ratio(), np.abs(encoded.decode() - x).max())
"""

from repro.core import (
    ANDA_GROUP_SIZE,
    AndaTensor,
    BfpConfig,
    BfpTensor,
    BitPlaneCompressor,
    PrecisionCombination,
    SearchResult,
    TensorKind,
    adaptive_precision_search,
    anda_matvec,
    bops_saving,
)
from repro.errors import (
    FormatError,
    HardwareError,
    ModelError,
    ReproError,
    SearchError,
)

__version__ = "1.0.0"

__all__ = [
    "ANDA_GROUP_SIZE",
    "AndaTensor",
    "BfpConfig",
    "BfpTensor",
    "BitPlaneCompressor",
    "FormatError",
    "HardwareError",
    "ModelError",
    "PrecisionCombination",
    "ReproError",
    "SearchError",
    "SearchResult",
    "TensorKind",
    "adaptive_precision_search",
    "anda_matvec",
    "bops_saving",
    "__version__",
]
