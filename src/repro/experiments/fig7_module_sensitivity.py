"""Fig. 7 — per-module activation sensitivity (A_qkv, A_o, A_u, A_d).

For three mid-size models, sweeps the mantissa length of *one* tensor
type at a time while the other three stay at 13 bits.  Paper shape:
A_qkv is consistently the most sensitive; A_d tolerates aggressive
truncation on OPT but matters more for the LLaMA family — the
observation motivating the per-type 4-tuple search space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import PrecisionCombination, TensorKind
from repro.experiments.reporting import format_table
from repro.llm.datasets import validation_sequences
from repro.llm.hooks import anda_quantizer
from repro.llm.perplexity import evaluate_perplexity, relative_accuracy
from repro.llm.zoo import get_model

MODELS: tuple[str, ...] = ("opt-6.7b", "llama-7b", "llama2-7b")
MANTISSA_BITS: tuple[int, ...] = tuple(range(4, 14))
BASELINE_BITS = 13
DATASET = "wikitext2-sim"


def single_kind_combination(kind: TensorKind, bits: int) -> PrecisionCombination:
    """All tensor types at 13 bits except ``kind`` at ``bits``."""
    mapping = {k: BASELINE_BITS for k in TensorKind.ordered()}
    mapping[kind] = bits
    return PrecisionCombination.from_mapping(mapping)


@dataclass(frozen=True)
class Fig7Result:
    """``relative[model][kind][mantissa_bits]`` relative accuracies."""

    relative: dict[str, dict[TensorKind, dict[int, float]]]

    def most_sensitive_kind(self, model: str, bits: int = 5) -> TensorKind:
        """Tensor type with the lowest accuracy at an aggressive width."""
        return min(
            self.relative[model],
            key=lambda kind: self.relative[model][kind][bits],
        )

    def render(self) -> str:
        blocks = []
        for model, per_kind in self.relative.items():
            headers = ["Tensor \\ M"] + [str(m) for m in MANTISSA_BITS]
            rows = []
            for kind in TensorKind.ordered():
                rows.append(
                    [f"A_{kind.value}"]
                    + [f"{per_kind[kind][m] * 100:.2f}%" for m in MANTISSA_BITS]
                )
            blocks.append(
                format_table(
                    headers, rows,
                    title=f"Fig. 7: per-module sensitivity, {model} ({DATASET})",
                )
            )
        return "\n\n".join(blocks)


def run(
    models: tuple[str, ...] = MODELS,
    mantissa_bits: tuple[int, ...] = MANTISSA_BITS,
    n_sequences: int = 8,
) -> Fig7Result:
    """Run the per-module sensitivity sweep."""
    relative: dict[str, dict[TensorKind, dict[int, float]]] = {}
    sequences = validation_sequences(DATASET, n_sequences=n_sequences)
    for name in models:
        model = get_model(name)
        model.set_quantizer(None)
        reference = evaluate_perplexity(model, sequences)
        relative[name] = {}
        for kind in TensorKind.ordered():
            relative[name][kind] = {}
            for m in mantissa_bits:
                model.set_quantizer(
                    anda_quantizer(single_kind_combination(kind, m))
                )
                ppl = evaluate_perplexity(model, sequences)
                relative[name][kind][m] = relative_accuracy(ppl, reference)
        model.set_quantizer(None)
    return Fig7Result(relative=relative)
