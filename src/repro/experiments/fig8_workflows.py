"""Fig. 8: the four FP-INT GeMM workflows, with counted annotations.

Renders the schematic's qualitative labels as per-GeMM quantities on a
LLaMA-7B up-projection at the paper's 2048-token prefill: conversion
counts ("repetitive conversion"), activation memory and traffic
("reduced access cost / reduced memory"), and the inner-loop
arithmetic class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import TensorKind
from repro.experiments.reporting import format_table
from repro.hw.workflows import WorkflowCost, compare_workflows
from repro.hw.workloads import Gemm

#: LLaMA-7B up+gate projection at 2048 tokens (the paper's W4A16 example).
WORKLOAD = Gemm(TensorKind.U, rows=2048, reduction=4096, cols=2 * 11008)

#: Anda storage width used in the comparison (a mid-range deployment).
MANTISSA = 8


@dataclass(frozen=True)
class Fig8Result:
    """Counted Fig. 8 annotations per workflow."""

    costs: dict[str, WorkflowCost]

    def render(self) -> str:
        giga = 1e9
        rows = [
            [
                cost.workflow,
                cost.compute_class,
                f"{cost.weight_dequants / giga:.2f}G",
                f"{cost.act_conversions / giga:.2f}G",
                f"{cost.act_memory_bits / 8 / 2**20:.0f} MiB",
                f"{cost.act_traffic_bits / 8 / 2**30:.2f} GiB",
            ]
            for cost in self.costs.values()
        ]
        return format_table(
            ["workflow", "inner loop", "wgt dequants", "act conversions",
             "act memory", "act traffic"],
            rows,
            title=(
                f"Fig. 8 workflows on the LLaMA-7B up-projection "
                f"(2048 tokens, Anda M={MANTISSA})"
            ),
        )


def run() -> Fig8Result:
    """Count all four workflows on the study workload."""
    return Fig8Result(costs=compare_workflows(WORKLOAD, MANTISSA))
