"""Extension study: bit-plane layout regularity and DRAM burst behaviour.

Quantifies the Sec. IV-A argument ("irregular memory accesses ... could
completely undo the benefits provided by Anda") with the banked-SRAM
and HBM2 models of :mod:`repro.hw.memory`:

* per mantissa length, the word-fetch and stall overhead of feeding the
  bit-serial PE from an element-atomic layout instead of bit planes,
* the DRAM footprint and burst utilization of Anda tensors versus the
  FP16 resident format of the FIGNA-style baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.hw.memory import Hbm2Channel, LayoutComparison, compare_layouts

#: Mantissa lengths swept (the range Fig. 14 deployments actually use).
MANTISSAS: tuple[int, ...] = (4, 5, 6, 8, 11, 13)

#: Groups per tensor in the study: one 2048x2048 activation tile.
N_GROUPS = 2048 * 2048 // 64


@dataclass(frozen=True)
class MemoryLayoutResult:
    """Layout comparison rows plus DRAM transfer statistics."""

    layouts: dict[int, LayoutComparison]
    dram: dict[int, dict[str, float]]

    def render(self) -> str:
        layout_rows = [
            [
                m,
                f"{cmp.bitplane.words_fetched:,}",
                f"{cmp.element.words_fetched:,}",
                f"{cmp.fetch_ratio:.1f}x",
                f"{cmp.element.bandwidth_utilization * 100:.1f}%",
                f"{cmp.element.rotations:,}",
            ]
            for m, cmp in self.layouts.items()
        ]
        dram_rows = [
            [
                m,
                f"{vals['anda_bytes'] / 2**20:.2f} MiB",
                f"{vals['fp16_bytes'] / 2**20:.2f} MiB",
                f"{vals['footprint_ratio']:.2f}x",
                f"{vals['burst_utilization'] * 100:.1f}%",
            ]
            for m, vals in self.dram.items()
        ]
        return "\n\n".join(
            [
                format_table(
                    ["M", "bit-plane words", "element words", "fetch ratio",
                     "element util.", "rotations"],
                    layout_rows,
                    title="SRAM: feeding the bit-serial PE (2048x2048 tile)",
                ),
                format_table(
                    ["M", "Anda DRAM", "FP16 DRAM", "reduction", "burst util."],
                    dram_rows,
                    title="DRAM: tensor transfer (HBM2 burst model)",
                ),
            ]
        )


def run(mantissas: tuple[int, ...] = MANTISSAS) -> MemoryLayoutResult:
    """Run the layout study for the configured mantissa sweep."""
    channel = Hbm2Channel()
    layouts: dict[int, LayoutComparison] = {}
    dram: dict[int, dict[str, float]] = {}
    fp16_bytes = N_GROUPS * 64 * 2
    fp16_transfer = channel.transfer(fp16_bytes)
    for m in mantissas:
        layouts[m] = compare_layouts(N_GROUPS, m)
        anda_bytes = channel.tensor_bytes(N_GROUPS, m)
        transfer = channel.transfer(anda_bytes)
        dram[m] = {
            "anda_bytes": float(anda_bytes),
            "fp16_bytes": float(fp16_bytes),
            "footprint_ratio": fp16_bytes / anda_bytes,
            "burst_utilization": transfer.burst_utilization,
            "fp16_burst_utilization": fp16_transfer.burst_utilization,
        }
    return MemoryLayoutResult(layouts=layouts, dram=dram)
