"""Table I — taxonomy of BFP formats (uni/multi/variable length)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.quant.schemes import TABLE1_FORMATS, FormatSpec


@dataclass(frozen=True)
class Table1Result:
    formats: tuple[FormatSpec, ...]

    def render(self) -> str:
        headers = ["Format", "Length class", "Compute mantissas", "Style", "Storage"]
        rows = []
        for spec in self.formats:
            bits = (
                "1b..16b"
                if len(spec.compute_mantissa_bits) > 4
                else "/".join(f"{b}b" for b in spec.compute_mantissa_bits)
            )
            rows.append(
                [spec.name, spec.length_class, bits, spec.compute_style, spec.storage]
            )
        return format_table(headers, rows, title="Table I: BFP format taxonomy")


def run() -> Table1Result:
    return Table1Result(formats=TABLE1_FORMATS)
