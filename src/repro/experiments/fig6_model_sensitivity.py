"""Fig. 6 — relative accuracy vs preserved mantissa bits across models.

With the group size fixed at 64 (the Fig. 5 sweet spot), sweeps the
mantissa length for all nine benchmark models and reports the relative
accuracy (FP16 PPL / quantized PPL).  Paper shape: all models hold near
100% down to ~6-8 bits, then diverge — with the OPT family tolerating
about one bit more truncation than the LLaMA family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.llm.config import BENCHMARK_MODELS
from repro.llm.datasets import validation_sequences
from repro.llm.perplexity import evaluate_perplexity, relative_accuracy
from repro.llm.zoo import get_model
from repro.quant.act_quant import bfp_quantizer

MANTISSA_BITS: tuple[int, ...] = tuple(range(4, 14))
DATASET = "wikitext2-sim"


@dataclass(frozen=True)
class Fig6Result:
    """``relative_accuracy[model][mantissa_bits]`` (1.0 = no loss)."""

    relative: dict[str, dict[int, float]]

    def tolerable_bits(self, model: str, loss: float = 0.01) -> int | None:
        """Fewest mantissa bits keeping relative accuracy above 1-loss."""
        feasible = [
            m for m, acc in self.relative[model].items() if acc >= 1 - loss
        ]
        return min(feasible) if feasible else None

    def render(self) -> str:
        headers = ["Model \\ M"] + [str(m) for m in MANTISSA_BITS] + ["min M @1%"]
        rows = []
        for model, series in self.relative.items():
            row: list[object] = [model]
            row += [f"{series[m] * 100:.2f}%" for m in MANTISSA_BITS]
            row.append(self.tolerable_bits(model) or "-")
            rows.append(row)
        return format_table(
            headers, rows,
            title=f"Fig. 6: relative accuracy vs mantissa bits (GS=64, {DATASET})",
        )


def run(
    models: tuple[str, ...] = BENCHMARK_MODELS,
    mantissa_bits: tuple[int, ...] = MANTISSA_BITS,
    n_sequences: int = 8,
) -> Fig6Result:
    """Run the per-model sensitivity sweep."""
    relative: dict[str, dict[int, float]] = {}
    sequences = validation_sequences(DATASET, n_sequences=n_sequences)
    for name in models:
        model = get_model(name)
        model.set_quantizer(None)
        reference = evaluate_perplexity(model, sequences)
        relative[name] = {}
        for m in mantissa_bits:
            model.set_quantizer(bfp_quantizer(m))
            ppl = evaluate_perplexity(model, sequences)
            relative[name][m] = relative_accuracy(ppl, reference)
        model.set_quantizer(None)
    return Fig6Result(relative=relative)
