"""Extension study: search-strategy comparison (the Sec. III-D contrast).

Runs Algorithm 1 against brute force, greedy coordinate descent, random
sampling and a layer-wise greedy assignment on two landscapes:

* the synthetic sensitivity landscape (deterministic, lets brute force
  establish the true optimum cheaply),
* the *real* ``opt-125m-sim`` calibration landscape of Fig. 9 (model
  evaluations; the adaptive search runs live, the brute-force optimum
  is bounded by the synthetic study to keep the bench fast).

The quantity of interest is evaluations-to-solution — each evaluation
is one calibration forward pass, the unit the paper counts when it
reports "10 iterations" against a ">10,000 combination" space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.search_variants import (
    LayerwiseOutcome,
    StrategyOutcome,
    compare_strategies,
    layer_wise_search,
    synthetic_landscape,
)
from repro.experiments.reporting import format_table

#: Layer count for the layer-wise comparator (OPT-125M has 12 layers).
N_LAYERS = 12

TOLERANCE = 0.01


@dataclass(frozen=True)
class StrategyComparisonResult:
    """Module-wise strategy outcomes plus the layer-wise comparator."""

    outcomes: dict[str, StrategyOutcome]
    layerwise: LayerwiseOutcome
    optimum_bops: float

    def render(self) -> str:
        rows = [
            [
                outcome.strategy,
                str(outcome.best) if outcome.best else "-",
                f"{outcome.best_bops:.2f}" if outcome.feasible else "inf",
                f"{outcome.best_bops / self.optimum_bops:.3f}"
                if outcome.feasible
                else "-",
                outcome.evaluations,
            ]
            for outcome in self.outcomes.values()
        ]
        rows.append(
            [
                f"layer-wise greedy ({N_LAYERS} layers)",
                f"mean {self.layerwise.mean_bits:.1f} bits",
                f"{self.layerwise.bops / N_LAYERS:.2f}",
                f"{self.layerwise.bops / N_LAYERS / self.optimum_bops:.3f}",
                self.layerwise.evaluations,
            ]
        )
        return format_table(
            ["strategy", "best combination", "BOPs", "vs optimum", "evaluations"],
            rows,
            title=f"Precision-search strategies (synthetic landscape, {TOLERANCE:.0%} tolerance)",
        )


def run(seed: int = 7) -> StrategyComparisonResult:
    """Compare every strategy on the synthetic landscape."""
    accuracy, bops, reference = synthetic_landscape(seed=seed)
    outcomes = {
        outcome.strategy: outcome
        for outcome in compare_strategies(accuracy, bops, reference, TOLERANCE)
    }
    optimum = outcomes["brute-force"].best_bops

    def layer_accuracy(assignment):
        scores = [accuracy(combo) for combo in assignment]
        return sum(scores) / len(scores)

    layerwise = layer_wise_search(
        layer_accuracy, bops, N_LAYERS, reference, TOLERANCE
    )
    return StrategyComparisonResult(
        outcomes=outcomes, layerwise=layerwise, optimum_bops=optimum
    )


@dataclass(frozen=True)
class RealLandscapeResult:
    """Strategy outcomes on the real opt-125m-sim calibration landscape.

    Each evaluation here is an actual calibration forward pass of the
    weight-quantized twin — the same currency the paper's "10
    iterations against >10,000 combinations" claim counts in.
    """

    model: str
    dataset: str
    outcomes: dict[str, StrategyOutcome]

    def render(self) -> str:
        rows = [
            [
                outcome.strategy,
                str(outcome.best) if outcome.best else "-",
                f"{outcome.best_bops:.3e}" if outcome.feasible else "inf",
                outcome.evaluations,
            ]
            for outcome in self.outcomes.values()
        ]
        return format_table(
            ["strategy", "best combination", "BOPs", "calibration passes"],
            rows,
            title=(
                f"Strategies on the real {self.model} landscape "
                f"({self.dataset}, {TOLERANCE:.0%} tolerance)"
            ),
        )


def run_real(
    model: str = "opt-125m",
    dataset: str = "wikitext2-sim",
    budget: int = 32,
) -> RealLandscapeResult:
    """Compare adaptive / greedy / random on real calibration evals.

    Brute force is deliberately excluded — its worst case is the full
    10^4-combination scan the paper's Fig. 9 argues against paying.
    """
    from repro.core.search_variants import (
        adaptive_search_outcome,
        greedy_descent_search,
        random_search,
    )
    from repro.quant.deploy import calibration_landscape

    accuracy, bops, reference = calibration_landscape(model, dataset)
    outcomes = {
        outcome.strategy: outcome
        for outcome in (
            adaptive_search_outcome(accuracy, bops, reference, TOLERANCE, budget),
            greedy_descent_search(accuracy, bops, reference, TOLERANCE),
            random_search(
                accuracy, bops, reference, TOLERANCE, max_evaluations=budget
            ),
        )
    }
    return RealLandscapeResult(model=model, dataset=dataset, outcomes=outcomes)
