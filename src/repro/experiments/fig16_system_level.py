"""Fig. 16 — system-level speedup, area efficiency, energy efficiency.

For every benchmark model: all baselines plus Anda at the 0.1% and 1%
WikiText2 precision combinations (from the deployment pipeline), with
geometric means across models.  Paper geomeans to track: Anda speedup
2.14x / 2.49x, area efficiency 3.47x / 4.03x, energy efficiency 3.07x /
3.16x over the GPU-like FP-FP baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.hw.accelerator import SystemComparison, compare_architectures, geometric_mean
from repro.hw.pe import PE_ORDER
from repro.llm.config import BENCHMARK_MODELS
from repro.quant.deploy import deploy_anda

DATASET = "wikitext2-sim"
TOLERANCES: tuple[float, ...] = (0.001, 0.01)

#: Column labels in figure order (Anda split per tolerance).
SYSTEM_LABELS: tuple[str, ...] = (
    "FP-FP", "FP-INT", "iFPU", "FIGNA", "FIGNA-M11", "FIGNA-M8",
    "Anda (0.1%)", "Anda (1%)",
)


@dataclass(frozen=True)
class Fig16Result:
    """``metrics[model][system_label]`` -> SystemComparison."""

    metrics: dict[str, dict[str, SystemComparison]]

    def geomean(self, label: str, metric: str) -> float:
        values = [
            getattr(per_model[label], metric) for per_model in self.metrics.values()
        ]
        return geometric_mean(values)

    def _panel(self, metric: str, title: str) -> str:
        headers = ["System"] + list(self.metrics) + ["GeoMean"]
        rows = []
        for label in SYSTEM_LABELS:
            row: list[object] = [label]
            row += [
                f"{getattr(self.metrics[m][label], metric):.2f}" for m in self.metrics
            ]
            row.append(f"{self.geomean(label, metric):.2f}")
            rows.append(row)
        return format_table(headers, rows, title=title)

    def render(self) -> str:
        return "\n\n".join(
            [
                self._panel("speedup", "Fig. 16a: speedup vs FP-FP"),
                self._panel("area_efficiency", "Fig. 16b: area efficiency vs FP-FP"),
                self._panel(
                    "energy_efficiency", "Fig. 16c: energy efficiency vs FP-FP"
                ),
            ]
        )


def run(models: tuple[str, ...] = BENCHMARK_MODELS) -> Fig16Result:
    """Simulate all systems over all models (searches run on demand)."""
    metrics: dict[str, dict[str, SystemComparison]] = {}
    for model in models:
        combos = {
            tolerance: deploy_anda(model, DATASET, tolerance).combination
            for tolerance in TOLERANCES
        }
        per_model: dict[str, SystemComparison] = {}
        baselines = compare_architectures(
            model, combos[TOLERANCES[0]], architectures=PE_ORDER
        )
        for name in PE_ORDER:
            if name == "Anda":
                continue
            per_model[name] = baselines[name]
        per_model["Anda (0.1%)"] = baselines["Anda"]
        per_model["Anda (1%)"] = compare_architectures(
            model, combos[TOLERANCES[1]], architectures=("Anda",)
        )["Anda"]
        metrics[model] = per_model
    return Fig16Result(metrics=metrics)
