"""Experiment registry and command-line entry point.

``python -m repro.experiments <name>`` runs one experiment and prints
its report; ``all`` runs every table and figure in paper order (the
first invocation trains the model zoo, which takes a few minutes).
"""

from __future__ import annotations

import sys
import time
from collections.abc import Callable
from typing import Protocol


class _Renderable(Protocol):
    def render(self) -> str: ...


def _lazy(module_name: str) -> Callable[[], _Renderable]:
    def runner() -> _Renderable:
        import importlib

        module = importlib.import_module(f"repro.experiments.{module_name}")
        return module.run()

    return runner


EXPERIMENTS: dict[str, Callable[[], _Renderable]] = {
    "table1": _lazy("table1_formats"),
    "fig2": _lazy("fig2_gemm_ops"),
    "fig5": _lazy("fig5_group_size"),
    "fig6": _lazy("fig6_model_sensitivity"),
    "fig7": _lazy("fig7_module_sensitivity"),
    "fig8": _lazy("fig8_workflows"),
    "fig9": _lazy("fig9_search_trace"),
    "table2": _lazy("table2_accuracy"),
    "fig14": _lazy("fig14_combinations"),
    "fig15": _lazy("fig15_pe_level"),
    "fig16": _lazy("fig16_system_level"),
    "fig17": _lazy("fig17_energy_breakdown"),
    "table3": _lazy("table3_breakdown"),
    "fig18": _lazy("fig18_tradeoff"),
    "ablations": _lazy("ablations"),
    "extensions": _lazy("extensions"),
    "ext-memory": _lazy("ext_memory"),
    "ext-overlap": _lazy("ext_overlap"),
    "ext-pipeline": _lazy("ext_pipeline"),
    "ext-search": _lazy("ext_search_strategies"),
    "ext-mx": _lazy("ext_mx"),
    "ext-dataflow": _lazy("ext_dataflow"),
    "ext-qat": _lazy("ext_qat"),
}

#: Paper-order listing used by ``all``.
EXPERIMENT_ORDER: tuple[str, ...] = tuple(EXPERIMENTS)


def run_experiment(name: str) -> str:
    """Run one experiment by registry name; returns the report text."""
    if name not in EXPERIMENTS:
        known = ", ".join(EXPERIMENT_ORDER)
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    return EXPERIMENTS[name]().render()


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("experiments:", ", ".join(EXPERIMENT_ORDER), "or 'all'")
        return 0
    names = EXPERIMENT_ORDER if argv[0] == "all" else tuple(argv)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print("known:", ", ".join(EXPERIMENT_ORDER), "or 'all'")
        return 2
    for name in names:
        start = time.time()
        report = run_experiment(name)
        print(report)
        print(f"[{name} finished in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
