"""Fig. 9 — adaptive precision search trajectory on OPT-125M.

Runs Algorithm 1 on the OPT-125M twin with a 1% loss constraint and
records every evaluated combination: its BOPs (normalized to the
FIGNA-style 13-bit uniform configuration, the paper's x-axis), its
relative accuracy, and the incumbent best after each step.  Paper
shape: the uniform ramp [4,4,4,4] .. finds the first feasible uniform
point, then one-bit relaxations walk the BOPs frontier to a near-optimal
4-tuple within ~10 evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bops import combination_bops
from repro.core.precision import PrecisionCombination
from repro.core.search import SearchResult
from repro.experiments.reporting import format_table
from repro.llm.config import get_config
from repro.quant.deploy import deploy_anda

MODEL = "opt-125m"
DATASET = "wikitext2-sim"
TOLERANCE = 0.01

#: BOPs normalization anchor: FIGNA's uniform 13-bit configuration.
FIGNA_UNIFORM = PrecisionCombination.uniform(13)


@dataclass(frozen=True)
class Fig9Result:
    """Search trace with paper-style normalized BOPs."""

    search: SearchResult
    normalized_bops: list[float]
    best: PrecisionCombination

    def render(self) -> str:
        headers = ["#", "Combination", "BOPs/FIGNA", "Rel. acc", "Best after"]
        rows = []
        for step, norm in zip(self.search.steps, self.normalized_bops):
            rows.append(
                [
                    step.iteration,
                    str(step.combination),
                    f"{norm:.3f}",
                    f"{step.accuracy * 100:.2f}%",
                    str(step.best_after) if step.best_after else "None",
                ]
            )
        table = format_table(
            headers, rows,
            title=f"Fig. 9: search trace on {MODEL} ({DATASET}, 1% loss)",
        )
        return f"{table}\n(Best) {self.best}"


def run(
    model: str = MODEL,
    dataset: str = DATASET,
    tolerance: float = TOLERANCE,
    max_iterations: int = 32,
) -> Fig9Result:
    """Run the search and normalize the trace for plotting."""
    deployment = deploy_anda(model, dataset, tolerance, max_iterations)
    mac_weights = get_config(model).mac_weights()
    figna_bops = combination_bops(FIGNA_UNIFORM, mac_weights)
    normalized = [step.bops / figna_bops for step in deployment.search.steps]
    return Fig9Result(
        search=deployment.search,
        normalized_bops=normalized,
        best=deployment.combination,
    )
