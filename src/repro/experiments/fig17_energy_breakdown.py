"""Fig. 17 — energy breakdown (compute / SRAM / DRAM) on LLaMA-13B.

Normalizes every architecture's three energy components to the FP-FP
system's total, exactly as the paper's stacked bars.  Paper shape:
compute shrinks steadily down the baseline list while SRAM/DRAM stay
fixed at FP16-storage cost; only Anda also halves DRAM and cuts SRAM by
>2x thanks to the compressed bit-plane format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.hw.accelerator import compare_architectures
from repro.hw.pe import PE_ORDER
from repro.hw.simulator import simulate_model
from repro.quant.deploy import deploy_anda

MODEL = "llama-13b"
DATASET = "wikitext2-sim"
TOLERANCES: tuple[float, ...] = (0.001, 0.01)


@dataclass(frozen=True)
class Fig17Result:
    """``shares[system_label]`` -> {compute, sram, dram} vs FP-FP total."""

    shares: dict[str, dict[str, float]]

    def total(self, label: str) -> float:
        return sum(self.shares[label].values())

    def efficiency(self, label: str) -> float:
        """Energy-efficiency multiplier implied by the bar (1/total)."""
        return 1.0 / self.total(label)

    def render(self) -> str:
        headers = ["System", "Compute", "SRAM", "DRAM", "Total", "Improvement"]
        rows = []
        for label, parts in self.shares.items():
            rows.append(
                [
                    label,
                    f"{parts['compute'] * 100:.1f}%",
                    f"{parts['sram'] * 100:.1f}%",
                    f"{parts['dram'] * 100:.1f}%",
                    f"{self.total(label) * 100:.1f}%",
                    f"{self.efficiency(label):.2f}x",
                ]
            )
        return format_table(
            headers, rows,
            title=f"Fig. 17: energy breakdown on {MODEL} (share of FP-FP total)",
        )


def run(model: str = MODEL) -> Fig17Result:
    """Compute the normalized breakdown for all systems."""
    fpfp = simulate_model(model, "FP-FP")
    shares: dict[str, dict[str, float]] = {}

    combo_01 = deploy_anda(model, DATASET, TOLERANCES[0]).combination
    combo_1 = deploy_anda(model, DATASET, TOLERANCES[1]).combination
    baselines = compare_architectures(model, combo_01)
    for name in PE_ORDER:
        if name == "Anda":
            continue
        shares[name] = baselines[name].energy_shares_vs_fpfp(fpfp)
    shares["Anda (0.1%)"] = baselines["Anda"].energy_shares_vs_fpfp(fpfp)
    anda_1 = compare_architectures(model, combo_1, architectures=("Anda",))["Anda"]
    shares["Anda (1%)"] = anda_1.energy_shares_vs_fpfp(fpfp)
    return Fig17Result(shares=shares)
