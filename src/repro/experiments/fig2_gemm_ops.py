"""Fig. 2 — FP-INT GeMM share of total operations vs context length.

Reproduces the motivation figure: for every benchmark model and context
lengths 1K..16K, count total inference operations and the fraction
contributed by the weight-projection FP-INT GeMMs.  The paper's claims:
the share exceeds 90% below 4K tokens and stays significant past 10K.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.hw.workloads import fig2_series
from repro.llm.config import BENCHMARK_MODELS

CONTEXT_LENGTHS: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384)


@dataclass(frozen=True)
class Fig2Result:
    """Share and total-op grids keyed by model then context length."""

    shares: dict[str, dict[int, float]]
    total_tops: dict[str, dict[int, float]]

    def render(self) -> str:
        headers = ["Model"] + [f"{c // 1024}K ops(T)" for c in CONTEXT_LENGTHS] + [
            f"{c // 1024}K share" for c in CONTEXT_LENGTHS
        ]
        rows = []
        for model in self.shares:
            row: list[object] = [model]
            row += [f"{self.total_tops[model][c]:.2f}" for c in CONTEXT_LENGTHS]
            row += [f"{self.shares[model][c] * 100:.1f}%" for c in CONTEXT_LENGTHS]
            rows.append(row)
        return format_table(
            headers, rows, title="Fig. 2: FP-INT GeMM share of total operations"
        )


def run(models: tuple[str, ...] = BENCHMARK_MODELS) -> Fig2Result:
    """Compute the Fig. 2 grid for the benchmark models."""
    series = fig2_series(models, CONTEXT_LENGTHS)
    shares = {
        model: {c: b.fp_int_share for c, b in per_model.items()}
        for model, per_model in series.items()
    }
    total = {
        model: {c: b.total_ops / 1e12 for c, b in per_model.items()}
        for model, per_model in series.items()
    }
    return Fig2Result(shares=shares, total_tops=total)
