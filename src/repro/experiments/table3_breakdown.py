"""Table III — area and power characteristics of the Anda system.

Renders the component-level breakdown from the calibrated silicon model
next to the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.hw.area import SystemBreakdown, anda_system_breakdown

#: Published Table III values: name -> (area mm^2, power mW).
PAPER_TABLE3: dict[str, tuple[float, float]] = {
    "MXU": (0.41, 54.34),
    "BPC": (0.07, 1.06),
    "Vector Unit": (0.05, 0.87),
    "Activation Buffer": (0.87, 16.94),
    "Weight Buffer": (0.80, 7.96),
    "Others": (0.01, 0.01),
}

PAPER_TOTAL = (2.17, 81.18)


@dataclass(frozen=True)
class Table3Result:
    """Measured breakdown plus the paper reference."""

    breakdown: SystemBreakdown

    def render(self) -> str:
        headers = [
            "Component", "Area [mm2]", "Paper area", "Power [mW]", "Paper power",
        ]
        rows = []
        for comp in self.breakdown.components:
            paper_area, paper_power = PAPER_TABLE3[comp.name]
            rows.append(
                [
                    comp.name,
                    f"{comp.area_mm2:.3f} ({self.breakdown.area_share(comp.name) * 100:.1f}%)",
                    f"{paper_area:.2f}",
                    f"{comp.power_mw:.2f} ({self.breakdown.power_share(comp.name) * 100:.1f}%)",
                    f"{paper_power:.2f}",
                ]
            )
        rows.append(
            [
                "Total",
                f"{self.breakdown.total_area_mm2:.2f}",
                f"{PAPER_TOTAL[0]:.2f}",
                f"{self.breakdown.total_power_mw:.2f}",
                f"{PAPER_TOTAL[1]:.2f}",
            ]
        )
        return format_table(
            headers, rows, title="Table III: Anda area/power breakdown (16nm, 285MHz)"
        )


def run() -> Table3Result:
    """Compose the Anda system breakdown."""
    return Table3Result(breakdown=anda_system_breakdown())
