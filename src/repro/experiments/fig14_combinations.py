"""Fig. 14 — identified precision combinations per model/dataset/tolerance.

Collects the 4-tuples the adaptive search selects for every benchmark
model on every dataset at 0.1% and 1% tolerance — the heat-map grids of
the paper.  Paper shape: A_qkv keeps the longest mantissa, the FFN
types (especially A_d) compress hardest, and looser tolerances shrink
every entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import PrecisionCombination, TensorKind
from repro.experiments.reporting import format_table
from repro.llm.config import BENCHMARK_MODELS
from repro.llm.datasets import DATASETS
from repro.quant.deploy import deploy_anda

TOLERANCES: tuple[float, ...] = (0.001, 0.01)


@dataclass(frozen=True)
class Fig14Result:
    """``combos[(dataset, tolerance)][model]`` selected combinations."""

    combos: dict[tuple[str, float], dict[str, PrecisionCombination]]

    def mean_bits(self, dataset: str, tolerance: float, kind: TensorKind) -> float:
        grid = self.combos[(dataset, tolerance)]
        return sum(comb[kind] for comb in grid.values()) / len(grid)

    def render(self) -> str:
        blocks = []
        for (dataset, tolerance), grid in self.combos.items():
            headers = ["Model", "M_qkv", "M_o", "M_u", "M_d"]
            rows = [
                [model, comb.qkv, comb.o, comb.u, comb.d]
                for model, comb in grid.items()
            ]
            blocks.append(
                format_table(
                    headers, rows,
                    title=f"Fig. 14: {dataset} @ {tolerance * 100:g}% tolerance",
                )
            )
        return "\n\n".join(blocks)


def run(
    models: tuple[str, ...] = BENCHMARK_MODELS,
    datasets: tuple[str, ...] = DATASETS,
    tolerances: tuple[float, ...] = TOLERANCES,
) -> Fig14Result:
    """Gather the combination grid from the deployment pipeline."""
    combos: dict[tuple[str, float], dict[str, PrecisionCombination]] = {}
    for dataset in datasets:
        for tolerance in tolerances:
            grid = {}
            for model in models:
                grid[model] = deploy_anda(model, dataset, tolerance).combination
            combos[(dataset, tolerance)] = grid
    return Fig14Result(combos=combos)
