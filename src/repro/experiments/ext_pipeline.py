"""Extension study: end-to-end inference (the Amdahl view of Fig. 16).

The paper's system results isolate FP-INT GeMMs.  This study schedules
*whole* transformer blocks — FP-FP attention, vector-unit work and the
KV cache included (:mod:`repro.hw.pipeline`) — and reports:

* end-to-end prefill speedup of Anda over FP-FP next to the GeMM-only
  speedup (the retained fraction is the Amdahl gap),
* decode throughput (tokens/s) and energy per generated token,
* how the GeMM share of block time falls with context length — the
  pipeline-level mirror of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import PrecisionCombination
from repro.experiments.reporting import format_table
from repro.hw.pipeline import (
    EndToEndComparison,
    InferenceEstimate,
    compare_end_to_end,
    estimate_inference,
    schedule_block,
)
from repro.quant.deploy import deploy_anda

#: Models reported (subset of the paper's nine, one per family/scale).
MODELS: tuple[str, ...] = ("opt-1.3b", "opt-6.7b", "llama-7b", "llama-13b", "opt-30b")

DATASET = "wikitext2-sim"
TOLERANCE = 0.01
PREFILL_TOKENS = 2048


@dataclass(frozen=True)
class PipelineResult:
    """Amdahl comparisons plus serving estimates per model."""

    comparisons: dict[str, EndToEndComparison]
    anda: dict[str, InferenceEstimate]
    fpfp: dict[str, InferenceEstimate]
    gemm_share_by_context: dict[int, float]

    def render(self) -> str:
        amdahl_rows = [
            [
                model,
                f"{cmp.gemm_speedup:.2f}x",
                f"{cmp.end_to_end_speedup:.2f}x",
                f"{cmp.amdahl_gap * 100:.0f}%",
                f"{cmp.end_to_end_energy_ratio:.2f}x",
            ]
            for model, cmp in self.comparisons.items()
        ]
        serving_rows = [
            [
                model,
                f"{self.fpfp[model].prefill_latency_s * 1e3:.0f} ms",
                f"{self.anda[model].prefill_latency_s * 1e3:.0f} ms",
                f"{self.fpfp[model].decode_tokens_per_s:.1f}",
                f"{self.anda[model].decode_tokens_per_s:.1f}",
                f"{self.anda[model].decode_energy_j * 1e3:.1f} mJ",
            ]
            for model in self.anda
        ]
        share_rows = [
            [context, f"{share * 100:.1f}%"]
            for context, share in self.gemm_share_by_context.items()
        ]
        return "\n\n".join(
            [
                format_table(
                    ["model", "GeMM speedup", "end-to-end", "retained", "energy"],
                    amdahl_rows,
                    title="Anda vs FP-FP, whole transformer block (2048-token prefill)",
                ),
                format_table(
                    ["model", "FP-FP prefill", "Anda prefill", "FP-FP tok/s",
                     "Anda tok/s", "Anda mJ/token"],
                    serving_rows,
                    title="Serving estimates (prefill latency, decode throughput)",
                ),
                format_table(
                    ["context", "GeMM share of block time"],
                    share_rows,
                    title="GeMM share vs context (llama-13b on Anda) - Fig. 2 mirror",
                ),
            ]
        )


def run(models: tuple[str, ...] = MODELS) -> PipelineResult:
    """Schedule every model end to end on Anda and the FP-FP baseline."""
    comparisons: dict[str, EndToEndComparison] = {}
    anda: dict[str, InferenceEstimate] = {}
    fpfp: dict[str, InferenceEstimate] = {}
    combos: dict[str, PrecisionCombination] = {}
    for model in models:
        combos[model] = deploy_anda(model, DATASET, TOLERANCE).combination
        comparisons[model] = compare_end_to_end(
            model, combos[model], sequence_length=PREFILL_TOKENS
        )
        anda[model] = estimate_inference(
            model, "Anda", combos[model], prefill_tokens=PREFILL_TOKENS
        )
        fpfp[model] = estimate_inference(
            model, "FP-FP", None, prefill_tokens=PREFILL_TOKENS
        )
    share_model = "llama-13b" if "llama-13b" in models else models[-1]
    gemm_share = {
        context: schedule_block(
            share_model, "Anda", combos[share_model], context
        ).share("gemm:")
        for context in (256, 1024, 4096, 16384)
    }
    return PipelineResult(
        comparisons=comparisons,
        anda=anda,
        fpfp=fpfp,
        gemm_share_by_context=gemm_share,
    )
