"""Ablations on the Anda design choices (beyond the paper's figures).

Three studies isolating where Anda's gains come from, each exercising a
design axis the paper discusses but does not ablate in a dedicated
figure:

* **BPC / storage format** — run the Anda compute datapath with FP16
  activation storage (compressor disabled).  Separates the bit-serial
  compute saving from the memory-system saving of the bit-plane store.
* **Bit-serial vs bit-parallel** — compare the Anda APU against a
  hypothetical fixed-width bit-parallel PE synthesized at the *same*
  effective mantissa (FIGNA-Mx style), quantifying the utilization
  advantage of runtime-variable precision across tensor types.
* **Rounding mode** — truncation (the hardware-cheap paper choice) vs
  round-to-nearest on model accuracy, measuring how much accuracy the
  cheap aligner gives up.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.precision import PrecisionCombination
from repro.experiments.reporting import format_table
from repro.hw.pe import get_pe
from repro.hw.simulator import simulate_model
from repro.llm.datasets import validation_sequences
from repro.llm.hooks import anda_quantizer
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.zoo import get_model

MODEL = "llama-13b"
ACCURACY_MODEL = "opt-1.3b"
DATASET = "wikitext2-sim"
COMBINATION = PrecisionCombination(7, 5, 6, 6)


@dataclass(frozen=True)
class AblationResult:
    """Named metric rows: ``rows[study][variant] -> value``."""

    rows: dict[str, dict[str, float]]

    def render(self) -> str:
        blocks = []
        for study, variants in self.rows.items():
            blocks.append(
                format_table(
                    ["Variant", "Value"],
                    [[k, f"{v:.3f}"] for k, v in variants.items()],
                    title=f"Ablation: {study}",
                )
            )
        return "\n\n".join(blocks)


def storage_format_ablation(model: str = MODEL) -> dict[str, float]:
    """Energy efficiency with and without the compressed store."""
    fpfp = simulate_model(model, "FP-FP")
    anda = simulate_model(model, "Anda", COMBINATION)
    no_bpc_pe = replace(get_pe("Anda"), name="Anda (FP16 store)", act_storage="fp16")
    no_bpc = simulate_model(model, no_bpc_pe, COMBINATION)
    return {
        "Anda full (bit-plane store)": fpfp.energy_pj / anda.energy_pj,
        "Anda compute only (FP16 store)": fpfp.energy_pj / no_bpc.energy_pj,
        "FIGNA (reference)": fpfp.energy_pj
        / simulate_model(model, "FIGNA").energy_pj,
    }


def serial_vs_parallel_ablation(model: str = MODEL) -> dict[str, float]:
    """Speedup of runtime-variable bit-serial vs fixed bit-parallel.

    The bit-parallel strawman is synthesized at the *ceiling* of the
    combination (it must cover the most sensitive tensor type), which
    is exactly why the paper argues bit-serial utilizes mixed
    precisions better.
    """
    fpfp = simulate_model(model, "FP-FP")
    anda = simulate_model(model, "Anda", COMBINATION)
    ceiling = COMBINATION.max_bits()
    parallel_pe = replace(
        get_pe("FIGNA"),
        name=f"bit-parallel M{ceiling}",
        compute_mantissa_bits=ceiling,
    )
    parallel = simulate_model(model, parallel_pe)
    return {
        f"Anda bit-serial {COMBINATION}": fpfp.cycles / anda.cycles,
        f"bit-parallel fixed M{ceiling}": fpfp.cycles / parallel.cycles,
    }


def rounding_mode_ablation(
    model: str = ACCURACY_MODEL, mantissa_bits: int = 5
) -> dict[str, float]:
    """Perplexity cost of hardware truncation vs round-to-nearest."""
    zoo_model = get_model(model)
    sequences = validation_sequences(DATASET, n_sequences=8)
    zoo_model.set_quantizer(None)
    reference = evaluate_perplexity(zoo_model, sequences)
    out: dict[str, float] = {"FP16 reference": reference}
    combination = PrecisionCombination.uniform(mantissa_bits)
    for rounding in ("truncate", "nearest"):
        zoo_model.set_quantizer(anda_quantizer(combination, rounding=rounding))
        out[f"M={mantissa_bits} {rounding}"] = evaluate_perplexity(
            zoo_model, sequences
        )
    zoo_model.set_quantizer(None)
    return out


def run() -> AblationResult:
    """Run all three ablations."""
    return AblationResult(
        rows={
            "storage format (energy efficiency vs FP-FP)": storage_format_ablation(),
            "bit-serial vs bit-parallel (speedup vs FP-FP)": serial_vs_parallel_ablation(),
            "rounding mode (perplexity)": rounding_mode_ablation(),
        }
    )
