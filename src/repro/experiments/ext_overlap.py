"""Extension study: controller-level overlap on the event simulator.

Executes compiled GeMM programs (:mod:`repro.hw.program`) on the
event-driven machine (:mod:`repro.hw.event_sim`) to verify two Sec. IV
claims dynamically rather than by closed form:

* double-buffered weight loading hides behind MXU compute,
* BPC compression of a finished tile overlaps the next tile's compute
  ("with little impact on overall system performance").

Reported per architecture and mantissa length on a production-shaped
GeMM (one LLaMA-13B QKV projection tile workload).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import PrecisionCombination, TensorKind
from repro.experiments.reporting import format_table
from repro.hw.event_sim import OverlapSummary, summarize_overlap
from repro.hw.program import compile_gemm
from repro.hw.workloads import Gemm

#: Architectures executed (the runtime-variable one plus two anchors).
ARCHITECTURES: tuple[str, ...] = ("FP-FP", "FIGNA", "Anda")

#: Anda mantissa lengths exercised.
MANTISSAS: tuple[int, ...] = (4, 6, 8, 11)

#: A production-shaped GeMM: 128 tokens through a 5120-deep projection
#: (LLaMA-13B QKV reduction depth, trimmed to keep the event schedule
#: tractable — the overlap fractions are tile-periodic, so a few tiles
#: measure the same steady state as the full matrix).
WORKLOAD = Gemm(TensorKind.QKV, rows=128, reduction=5120, cols=128)


@dataclass(frozen=True)
class OverlapResult:
    """Per-configuration overlap summaries."""

    summaries: dict[str, OverlapSummary]

    def render(self) -> str:
        rows = [
            [
                name,
                f"{summary.total_cycles:,}",
                f"{summary.mxu_utilization * 100:.1f}%",
                f"{summary.bpc_hidden_fraction * 100:.1f}%",
                f"{summary.load_hidden_fraction * 100:.1f}%",
                f"{summary.slowdown_vs_compute_bound:.3f}x",
            ]
            for name, summary in self.summaries.items()
        ]
        return format_table(
            ["configuration", "cycles", "MXU util.", "BPC hidden",
             "loads hidden", "vs compute-bound"],
            rows,
            title=(
                f"Event-simulated overlap ({WORKLOAD.rows}x"
                f"{WORKLOAD.reduction}x{WORKLOAD.cols} QKV GeMM)"
            ),
        )


def run() -> OverlapResult:
    """Execute the workload on every configuration."""
    summaries: dict[str, OverlapSummary] = {}
    for architecture in ARCHITECTURES:
        if architecture == "Anda":
            for m in MANTISSAS:
                program = compile_gemm(
                    WORKLOAD, "Anda", PrecisionCombination.uniform(m)
                )
                summaries[f"Anda-M{m}"] = summarize_overlap(program)
        else:
            program = compile_gemm(WORKLOAD, architecture)
            summaries[architecture] = summarize_overlap(program)
    return OverlapResult(summaries=summaries)
