"""Experiment drivers: one module per paper table/figure.

Registry and CLI live in :mod:`repro.experiments.runner`; run
``python -m repro.experiments fig9`` (or ``all``).  Each driver module
exposes ``run(...)`` returning a result object with the raw data plus a
``render()`` report.
"""

from repro.experiments.runner import EXPERIMENT_ORDER, EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "EXPERIMENT_ORDER", "run_experiment"]
