"""Plain-text rendering helpers for the experiment drivers.

Every experiment produces structured data plus a human-readable report;
these helpers keep the reports consistent (fixed-width ASCII tables, the
same number formatting as the paper where possible).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_ratio(value: float) -> str:
    """Paper-style multiplier formatting (e.g. ``2.49x``)."""
    return f"{value:.2f}x"


def format_percent(value: float, signed: bool = True) -> str:
    """Percent with the paper's sign convention for accuracy drops."""
    sign = "+" if signed and value > 0 else ""
    return f"{sign}{value:.2f}%"


def format_series(name: str, pairs: Iterable[tuple[object, float]], unit: str = "") -> str:
    """One labelled data series, ``x -> y`` per line."""
    lines = [f"[{name}]"]
    lines.extend(f"  {x}: {y:.4f}{unit}" for x, y in pairs)
    return "\n".join(lines)
