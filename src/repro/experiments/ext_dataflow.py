"""Extension study: dataflow-mapping ablation for the MXU (Sec. IV-D ❸).

The paper fixes the MXU to "typical output stationary dataflow [45]"
without justification.  This study costs the three classical dataflows
on paper-scale GeMMs at FP16 and Anda activation widths, surfacing the
format-architecture interaction: the dataflows tie at FP16, and the
Anda format is what makes output-stationary the right (and eventually
only sensible) choice — 32-bit partial-sum traffic of the alternatives
cannot shrink with the mantissa.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import TensorKind
from repro.experiments.reporting import format_table
from repro.hw.mapping import DataflowComparison, anda_act_bits, compare_dataflows
from repro.hw.workloads import Gemm

#: LLaMA-13B QKV projection at the paper's 2048-token prefill.
WORKLOAD = Gemm(TensorKind.QKV, rows=2048, reduction=5120, cols=3 * 5120)

#: Activation widths studied: FP16 plus the Anda deployment range.
WIDTHS: tuple[tuple[str, float], ...] = (
    ("FP16", 16.0),
    ("Anda M=11", anda_act_bits(11)),
    ("Anda M=8", anda_act_bits(8)),
    ("Anda M=5", anda_act_bits(5)),
)


@dataclass(frozen=True)
class DataflowResult:
    """Per-width dataflow comparisons on the study workload."""

    comparisons: dict[str, DataflowComparison]

    def render(self) -> str:
        rows = []
        for label, cmp in self.comparisons.items():
            rows.append(
                [
                    label,
                    cmp.best(),
                    f"{cmp.overhead('output-stationary'):.3f}",
                    f"{cmp.overhead('weight-stationary'):.3f}",
                    f"{cmp.overhead('input-stationary'):.3f}",
                ]
            )
        return format_table(
            ["activation width", "best dataflow", "OS", "WS", "IS"],
            rows,
            title=(
                "Dataflow ablation on the LLaMA-13B QKV GeMM "
                "(SRAM traffic relative to best)"
            ),
        )


def run() -> DataflowResult:
    """Compare dataflows at every studied activation width."""
    return DataflowResult(
        comparisons={
            label: compare_dataflows(WORKLOAD, width) for label, width in WIDTHS
        }
    )
