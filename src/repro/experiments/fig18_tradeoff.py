"""Fig. 18 — accuracy/performance trade-off across loss tolerances.

Sweeps the accuracy-loss constraint from 0.1% to 5% for every benchmark
model: each tolerance re-runs the adaptive search, and the resulting
combination feeds the system simulator.  Paper shape: speedup and
energy efficiency grow monotonically (weakly) with the tolerance; OPT
models gain more at tight constraints because they tolerate shorter
mantissas, with the families converging as the constraint relaxes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.hw.accelerator import AndaOperatingPoint, anda_operating_point
from repro.llm.config import BENCHMARK_MODELS
from repro.quant.deploy import deploy_anda

DATASET = "wikitext2-sim"
TOLERANCES: tuple[float, ...] = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05)


@dataclass(frozen=True)
class Fig18Result:
    """``points[model][tolerance]`` Anda operating points."""

    points: dict[str, dict[float, AndaOperatingPoint]]

    def speedup_series(self, model: str) -> list[tuple[float, float]]:
        return [(tol, p.speedup) for tol, p in self.points[model].items()]

    def energy_series(self, model: str) -> list[tuple[float, float]]:
        return [(tol, p.energy_efficiency) for tol, p in self.points[model].items()]

    def render(self) -> str:
        headers = ["Model"] + [f"{t * 100:g}%" for t in TOLERANCES]
        speed_rows, energy_rows = [], []
        for model, per_tol in self.points.items():
            speed_rows.append(
                [model] + [f"{per_tol[t].speedup:.2f}" for t in TOLERANCES]
            )
            energy_rows.append(
                [model] + [f"{per_tol[t].energy_efficiency:.2f}" for t in TOLERANCES]
            )
        return "\n\n".join(
            [
                format_table(
                    headers, speed_rows,
                    title="Fig. 18a: Anda speedup vs accuracy-loss tolerance",
                ),
                format_table(
                    headers, energy_rows,
                    title="Fig. 18b: Anda energy efficiency vs tolerance",
                ),
            ]
        )


def run(
    models: tuple[str, ...] = BENCHMARK_MODELS,
    tolerances: tuple[float, ...] = TOLERANCES,
) -> Fig18Result:
    """Sweep tolerances; each point reuses the deployment cache."""
    points: dict[str, dict[float, AndaOperatingPoint]] = {}
    for model in models:
        points[model] = {}
        for tolerance in tolerances:
            deployment = deploy_anda(model, DATASET, tolerance)
            points[model][tolerance] = anda_operating_point(
                model, deployment.combination, tolerance
            )
    return Fig18Result(points=points)
