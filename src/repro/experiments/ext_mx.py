"""Extension study: Anda versus shared-microexponent (MX) formats.

The paper's related work cites shared microexponents [14] as the other
way to spend extra bits on BFP fidelity: per-subgroup *alignment* bits
instead of Anda's per-tensor *mantissa length*.  This study compares
the two axes head to head:

* RMS round-trip error on real zoo-model activations at (approximately)
  equal storage budgets,
* perplexity of ``opt-125m-sim`` under each format, per tensor type
  budget (the drop-in fake-quant route the accuracy benches use).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bfp import BfpConfig, fake_quantize as bfp_fake_quantize
from repro.core.precision import TensorKind
from repro.experiments.reporting import format_table
from repro.llm.datasets import validation_sequences
from repro.llm.hooks import per_kind_quantizer
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.zoo import get_model
from repro.quant.mx import MxConfig, fake_quantize_mx, mx_error

MODEL = "opt-125m-sim"
DATASET = "wikitext2-sim"

#: (label, bfp config, mx config) pairs at matched bits/element budgets:
#: BFP spends the budget on mantissa, MX trades one mantissa bit for
#: subgroup microexponents.
BUDGETS: tuple[tuple[str, BfpConfig, MxConfig], ...] = (
    (
        "~5.1 bits/elem",
        BfpConfig(mantissa_bits=4, group_size=64),
        MxConfig(mantissa_bits=3, subgroup_size=2, micro_bits=1),
    ),
    (
        "~7.1 bits/elem",
        BfpConfig(mantissa_bits=6, group_size=64),
        MxConfig(mantissa_bits=5, subgroup_size=2, micro_bits=1),
    ),
    (
        "~9.1 bits/elem",
        BfpConfig(mantissa_bits=8, group_size=64),
        MxConfig(mantissa_bits=7, subgroup_size=2, micro_bits=1),
    ),
)


@dataclass(frozen=True)
class MxComparisonResult:
    """Error and perplexity comparison between BFP/Anda and MX."""

    rmse: dict[str, dict[str, float]]
    perplexity: dict[str, dict[str, float]]
    reference_ppl: float

    def render(self) -> str:
        rmse_rows = [
            [budget, f"{vals['bfp']:.5f}", f"{vals['mx']:.5f}",
             f"{vals['mx'] / vals['bfp']:.2f}"]
            for budget, vals in self.rmse.items()
        ]
        ppl_rows = [
            [budget, f"{vals['bfp']:.3f}", f"{vals['mx']:.3f}",
             f"{self.reference_ppl:.3f}"]
            for budget, vals in self.perplexity.items()
        ]
        return "\n\n".join(
            [
                format_table(
                    ["budget", "BFP (Anda-style) RMSE", "MX RMSE", "MX/BFP"],
                    rmse_rows,
                    title="Round-trip error on zoo activations (equal storage)",
                ),
                format_table(
                    ["budget", "BFP PPL", "MX PPL", "FP16 PPL"],
                    ppl_rows,
                    title=f"{MODEL} perplexity on {DATASET}",
                ),
            ]
        )


def _collect_activations(model, sequences) -> np.ndarray:
    """Record one batch of A_qkv activations from the zoo model."""
    recorded: list[np.ndarray] = []

    def recorder(kind: TensorKind, activation: np.ndarray) -> None:
        if kind is TensorKind.QKV and len(recorded) < 4:
            recorded.append(activation.reshape(-1, activation.shape[-1]))

    model.set_recorder(recorder)
    evaluate_perplexity(model, sequences[:2])
    model.set_recorder(None)
    return np.concatenate(recorded, axis=0)


def run() -> MxComparisonResult:
    """Compare the two formats on activations and model perplexity."""
    model = get_model(MODEL)
    sequences = validation_sequences(DATASET, n_sequences=8, seq_len=128)
    activations = _collect_activations(model, sequences)

    rmse: dict[str, dict[str, float]] = {}
    perplexity: dict[str, dict[str, float]] = {}
    reference = evaluate_perplexity(model, sequences)

    for label, bfp_config, mx_config in BUDGETS:
        bfp_err = float(
            np.sqrt(
                np.mean(
                    (activations - bfp_fake_quantize(activations, bfp_config)) ** 2
                )
            )
        )
        rmse[label] = {"bfp": bfp_err, "mx": mx_error(activations, mx_config)}

        def all_kinds(transform):
            return per_kind_quantizer(
                {kind: transform for kind in TensorKind}
            )

        model.set_quantizer(
            all_kinds(lambda a, c=bfp_config: _quantize_rows(a, bfp_fake_quantize, c))
        )
        bfp_ppl = evaluate_perplexity(model, sequences)
        model.set_quantizer(
            all_kinds(lambda a, c=mx_config: _quantize_rows(a, fake_quantize_mx, c))
        )
        mx_ppl = evaluate_perplexity(model, sequences)
        model.set_quantizer(None)
        perplexity[label] = {"bfp": bfp_ppl, "mx": mx_ppl}

    return MxComparisonResult(
        rmse=rmse, perplexity=perplexity, reference_ppl=reference
    )


def _quantize_rows(activation: np.ndarray, fake_quantize, config) -> np.ndarray:
    flat = activation.reshape(-1, activation.shape[-1])
    return fake_quantize(flat, config).reshape(activation.shape)
