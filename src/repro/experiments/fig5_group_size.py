"""Fig. 5 — LLM sensitivity to BFP group size and mantissa length.

Sweeps shared-exponent group size (1 .. 256 and whole-channel) against
preserved mantissa bits (4..13) for an OPT and a LLaMA-2 model on the
WikiText2-sim stream, measuring perplexity with *all four* activation
tensor types BFP-quantized (the Sec. II-C study setup: full-precision
weights, BFP activations).

Paper shape to reproduce: larger groups need longer mantissas to stay
inside the 1% loss bound; GS=64 is the efficiency/accuracy sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.llm.datasets import validation_sequences
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.zoo import get_model
from repro.quant.act_quant import bfp_quantizer

MODELS: tuple[str, ...] = ("opt-1.3b", "llama2-7b")
GROUP_SIZES: tuple[int | None, ...] = (1, 8, 16, 32, 64, 128, 256, None)
MANTISSA_BITS: tuple[int, ...] = tuple(range(4, 14))
DATASET = "wikitext2-sim"


@dataclass(frozen=True)
class Fig5Result:
    """PPL grids: ``ppl[model][group_size][mantissa_bits]`` plus FP refs."""

    ppl: dict[str, dict[int | None, dict[int, float]]]
    fp_ppl: dict[str, float]

    def min_mantissa_within_loss(
        self, model: str, group_size: int | None, loss: float = 0.01
    ) -> int | None:
        """Smallest mantissa keeping PPL within ``loss`` of FP16."""
        bound = self.fp_ppl[model] * (1 + loss)
        feasible = [
            m for m, p in self.ppl[model][group_size].items() if p <= bound
        ]
        return min(feasible) if feasible else None

    def render(self) -> str:
        blocks = []
        for model in self.ppl:
            headers = ["GS \\ M"] + [str(m) for m in MANTISSA_BITS]
            rows = []
            for gs in GROUP_SIZES:
                label = "#ch" if gs is None else str(gs)
                rows.append(
                    [label]
                    + [f"{self.ppl[model][gs][m]:.3f}" for m in MANTISSA_BITS]
                )
            blocks.append(
                format_table(
                    headers,
                    rows,
                    title=(
                        f"Fig. 5: {model} on {DATASET} "
                        f"(FP16 PPL {self.fp_ppl[model]:.3f})"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run(
    models: tuple[str, ...] = MODELS,
    group_sizes: tuple[int | None, ...] = GROUP_SIZES,
    mantissa_bits: tuple[int, ...] = MANTISSA_BITS,
    n_sequences: int = 8,
) -> Fig5Result:
    """Run the group-size sensitivity sweep."""
    ppl: dict[str, dict[int | None, dict[int, float]]] = {}
    fp_ppl: dict[str, float] = {}
    for name in models:
        model = get_model(name)
        sequences = validation_sequences(DATASET, n_sequences=n_sequences)
        model.set_quantizer(None)
        fp_ppl[name] = evaluate_perplexity(model, sequences)
        ppl[name] = {}
        for gs in group_sizes:
            ppl[name][gs] = {}
            for m in mantissa_bits:
                model.set_quantizer(bfp_quantizer(m, group_size=gs))
                ppl[name][gs][m] = evaluate_perplexity(model, sequences)
        model.set_quantizer(None)
    return Fig5Result(ppl=ppl, fp_ppl=fp_ppl)
