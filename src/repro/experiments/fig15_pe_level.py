"""Fig. 15 — PE-level area, power, area efficiency and energy efficiency.

Tabulates every PE model (FP-FP .. Anda, plus the Anda-M4..M13 points)
on the four panels of Fig. 15, using the published synthesis ratios as
the primary numbers and the independent gate-model structural estimate
alongside (RTL synthesis being unavailable here — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.hw.pe import (
    PE_MODELS,
    PE_ORDER,
    pe_area_efficiency,
    pe_energy_efficiency,
)

ANDA_MANTISSAS: tuple[int, ...] = tuple(range(13, 3, -1))

#: Paper's published Fig. 15c/d values for the Anda-Mx points, used by
#: the report to show measured-vs-paper deltas.
PAPER_ANDA_AREA_EFF = {
    13: 4.96, 12: 5.34, 11: 5.79, 10: 6.31, 9: 6.95,
    8: 7.72, 7: 8.68, 6: 9.92, 5: 11.58, 4: 13.89,
}
PAPER_ANDA_ENERGY_EFF = {
    13: 5.74, 12: 6.18, 11: 6.69, 10: 7.30, 9: 8.03,
    8: 8.93, 7: 10.04, 6: 11.48, 5: 13.39, 4: 16.07,
}


@dataclass(frozen=True)
class Fig15Result:
    """All four panels keyed by PE (or Anda-Mx) label."""

    area: dict[str, float]
    power: dict[str, float]
    area_efficiency: dict[str, float]
    energy_efficiency: dict[str, float]
    modeled_area: dict[str, float]

    def render(self) -> str:
        headers = [
            "PE", "Area(rel)", "Power(rel)", "AreaEff", "EnergyEff", "GateModelArea",
        ]
        rows = []
        for label in self.area:
            rows.append(
                [
                    label,
                    f"{self.area[label]:.2f}",
                    f"{self.power[label]:.2f}",
                    f"{self.area_efficiency[label]:.2f}",
                    f"{self.energy_efficiency[label]:.2f}",
                    f"{self.modeled_area.get(label, float('nan')):.2f}",
                ]
            )
        return format_table(
            headers, rows, title="Fig. 15: PE-level comparison (normalized to FP-FP)"
        )


def run() -> Fig15Result:
    """Assemble the four Fig. 15 panels."""
    area: dict[str, float] = {}
    power: dict[str, float] = {}
    area_eff: dict[str, float] = {}
    energy_eff: dict[str, float] = {}
    modeled: dict[str, float] = {}

    for name in PE_ORDER:
        pe = PE_MODELS[name]
        area[name] = pe.area_rel
        power[name] = pe.power_rel
        mantissa = 15 if name == "Anda" else None
        area_eff[name] = pe_area_efficiency(name, mantissa)
        energy_eff[name] = pe_energy_efficiency(name, mantissa)
        modeled[name] = pe.modeled_area_rel()

    anda = PE_MODELS["Anda"]
    for m in ANDA_MANTISSAS:
        label = f"Anda-M{m}"
        area[label] = anda.area_rel
        power[label] = anda.power_rel
        area_eff[label] = pe_area_efficiency("Anda", m)
        energy_eff[label] = pe_energy_efficiency("Anda", m)

    return Fig15Result(
        area=area,
        power=power,
        area_efficiency=area_eff,
        energy_efficiency=energy_eff,
        modeled_area=modeled,
    )
