"""Extension studies beyond the paper's evaluation section.

Three analyses the paper motivates but does not evaluate:

* **Decode-regime analysis** — the paper's system results are prefill
  (Sec. V-A "maximum acceptable input sequence length"); this study
  runs the same architectures on batch-1 decode GeMVs and reports the
  roofline placement, showing where the bit-serial win survives and
  where the memory wall takes over (Sec. VI's KV-cache discussion).
* **KV-cache compression** (Sec. VI synergy) — applies the Anda format
  to cached keys/values, reporting footprint reduction per mantissa
  length and the logit perturbation it causes on a zoo model.
* **Uniform-precision deployment** (Sec. VI bit-parallel discussion) —
  the search specialized to one fixed width per model, the quantity a
  FIGNA-Mx-style bit-parallel accelerator would consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.precision import PrecisionCombination
from repro.experiments.reporting import format_table
from repro.hw.roofline import decode_vs_prefill_summary
from repro.llm.kv_quant import kv_compression_ratio, quantized_cache_factory
from repro.llm.zoo import get_model
from repro.quant.deploy import deploy_anda, deploy_uniform

DATASET = "wikitext2-sim"
KV_MANTISSAS: tuple[int, ...] = (4, 6, 8, 11)
UNIFORM_MODELS: tuple[str, ...] = ("opt-1.3b", "opt-6.7b", "llama2-7b")


@dataclass(frozen=True)
class ExtensionsResult:
    """Decode summaries, KV compression table and uniform widths."""

    decode: dict[str, dict[str, float]]
    kv: dict[int, dict[str, float]]
    uniform_bits: dict[str, int]
    searched: dict[str, PrecisionCombination]

    def render(self) -> str:
        decode_rows = [
            [
                model,
                f"{vals['prefill_speedup']:.2f}",
                f"{vals['decode_speedup']:.2f}",
                f"{vals['prefill_dram_reduction']:.2f}",
                f"{vals['decode_dram_reduction']:.2f}",
            ]
            for model, vals in self.decode.items()
        ]
        kv_rows = [
            [
                m,
                f"{vals['compression']:.2f}x",
                f"{vals['logit_rel_error'] * 100:.3f}%",
            ]
            for m, vals in self.kv.items()
        ]
        uniform_rows = [
            [model, bits, str(self.searched[model])]
            for model, bits in self.uniform_bits.items()
        ]
        return "\n\n".join(
            [
                format_table(
                    ["Model", "prefill speedup", "decode speedup",
                     "prefill DRAM cut", "decode DRAM cut"],
                    decode_rows,
                    title="Extension: Anda in the decode regime (vs FP-FP)",
                ),
                format_table(
                    ["KV mantissa", "cache compression", "max logit error"],
                    kv_rows,
                    title="Extension: Anda-format KV cache (opt-1.3b twin)",
                ),
                format_table(
                    ["Model", "uniform M (1%)", "searched 4-tuple (1%)"],
                    uniform_rows,
                    title="Extension: uniform width for bit-parallel deployment",
                ),
            ]
        )


def decode_analysis(models: tuple[str, ...]) -> dict[str, dict[str, float]]:
    out = {}
    for model in models:
        combination = deploy_anda(model, DATASET, 0.01).combination
        out[model] = decode_vs_prefill_summary(model, combination)
    return out


def kv_analysis(model_name: str = "opt-1.3b") -> dict[int, dict[str, float]]:
    model = get_model(model_name)
    prompt = np.random.default_rng(5).integers(0, 256, size=(1, 48))
    exact = model.forward_step(prompt, model.new_cache())
    scale = float(np.abs(exact).max())
    out: dict[int, dict[str, float]] = {}
    for bits in KV_MANTISSAS:
        logits = model.forward_step(prompt, quantized_cache_factory(model, bits))
        out[bits] = {
            "compression": kv_compression_ratio(bits),
            "logit_rel_error": float(np.abs(logits - exact).max()) / scale,
        }
    return out


def run(models: tuple[str, ...] = UNIFORM_MODELS) -> ExtensionsResult:
    """Run all three extension studies (zoo models load on demand)."""
    searched = {
        model: deploy_anda(model, DATASET, 0.01).combination for model in models
    }
    uniform = {
        model: deploy_uniform(model, DATASET, 0.01) for model in models
    }
    return ExtensionsResult(
        decode=decode_analysis(models),
        kv=kv_analysis(),
        uniform_bits=uniform,
        searched=searched,
    )
