"""Table II — accuracy/BOPs comparison of activation computation methods.

For every benchmark model and dataset, evaluates held-out perplexity
under six schemes:

* **FP16** — unquantized model (top black row),
* **Omniquant** — W4A16 weight-only reference (drop = 0 by definition),
* **FIGNA** — long-mantissa BFP conversion (1.23x BOPs saving),
* **VS-Quant** — 4-bit mantissa without retraining (4.0x saving,
  severe accuracy collapse),
* **Anda (0.1%)** / **Anda (1%)** — searched precision combinations.

Paper shape to reproduce: FIGNA ~lossless, VS-Quant collapses by tens
of percent, Anda lands within (or near) its tolerance at 2-3.3x savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import format_percent, format_ratio, format_table
from repro.llm.config import BENCHMARK_MODELS
from repro.llm.datasets import DATASETS
from repro.llm.perplexity import accuracy_drop_percent
from repro.quant.deploy import (
    deploy_anda,
    fp16_validation_ppl,
    reference_model,
    scheme_validation_ppl,
)
from repro.quant.schemes import SCHEME_BOPS_SAVING, TABLE2_SCHEMES

TOLERANCES: tuple[float, ...] = (0.001, 0.01)


@dataclass(frozen=True)
class Table2Cell:
    """One scheme's result on one (model, dataset)."""

    ppl: float
    drop_percent: float
    bops_saving: float


@dataclass
class Table2Result:
    """``cells[dataset][model][scheme]`` plus the row/scheme order."""

    cells: dict[str, dict[str, dict[str, Table2Cell]]] = field(default_factory=dict)
    schemes: tuple[str, ...] = (
        "fp16", "omniquant", "figna", "vs-quant", "anda-0.1%", "anda-1%",
    )

    def render(self) -> str:
        blocks = []
        for dataset, models in self.cells.items():
            headers = ["Scheme"] + list(models)
            rows = []
            for scheme in self.schemes:
                row: list[object] = [scheme]
                for model in models:
                    cell = models[model][scheme]
                    row.append(
                        f"{cell.ppl:.2f} ({format_percent(cell.drop_percent)}, "
                        f"{format_ratio(cell.bops_saving)})"
                    )
                rows.append(row)
            blocks.append(
                format_table(
                    headers, rows,
                    title=f"Table II: {dataset} (PPL, accuracy drop, BOPs saving)",
                )
            )
        return "\n\n".join(blocks)


def _evaluate_cell_block(model_name: str, dataset: str) -> dict[str, Table2Cell]:
    """All six scheme results for one (model, dataset) pair."""
    reference_model(model_name)  # warm the weight-quantized copy
    results: dict[str, Table2Cell] = {}

    fp16_ppl = fp16_validation_ppl(model_name, dataset)
    omni_ppl = scheme_validation_ppl(
        model_name, dataset, TABLE2_SCHEMES["omniquant"]()
    )
    results["fp16"] = Table2Cell(fp16_ppl, 0.0, 0.0)
    results["omniquant"] = Table2Cell(omni_ppl, 0.0, SCHEME_BOPS_SAVING["omniquant"])

    for scheme in ("figna", "vs-quant"):
        ppl = scheme_validation_ppl(model_name, dataset, TABLE2_SCHEMES[scheme]())
        results[scheme] = Table2Cell(
            ppl, accuracy_drop_percent(ppl, omni_ppl), SCHEME_BOPS_SAVING[scheme]
        )

    for tolerance in TOLERANCES:
        deployment = deploy_anda(model_name, dataset, tolerance)
        label = f"anda-{tolerance * 100:g}%"
        results[label] = Table2Cell(
            deployment.anda_ppl_validation,
            accuracy_drop_percent(deployment.anda_ppl_validation, omni_ppl),
            deployment.bops_saving,
        )
    return results


def run(
    models: tuple[str, ...] = BENCHMARK_MODELS,
    datasets: tuple[str, ...] = DATASETS,
) -> Table2Result:
    """Build the full Table II grid (trains/loads the zoo on demand)."""
    result = Table2Result()
    for dataset in datasets:
        result.cells[dataset] = {}
        for model_name in models:
            result.cells[dataset][model_name] = _evaluate_cell_block(
                model_name, dataset
            )
    return result
