"""Extension study: Anda quantization-aware training (Sec. VI future work).

Fine-tunes a small zoo-style model under straight-through Anda
quantization at mantissa lengths *below* the post-training feasibility
frontier, and reports how much of the PTQ perplexity damage a short
QAT run recovers — the paper's closing hypothesis, demonstrated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import PrecisionCombination
from repro.experiments.reporting import format_table
from repro.llm.config import ModelConfig
from repro.llm.datasets import load_corpus, sequence_windows
from repro.llm.qat import QatResult, qat_recovery
from repro.llm.training import train_language_model
from repro.llm.transformer import CausalLM

DATASET = "wikitext2-sim"

#: Combinations below the typical 1%-tolerance frontier of Fig. 14.
COMBINATIONS: tuple[PrecisionCombination, ...] = (
    PrecisionCombination.uniform(3),
    PrecisionCombination.uniform(4),
)

QAT_STEPS = 80


@dataclass(frozen=True)
class QatStudyResult:
    """PTQ damage and QAT recovery per aggressive combination."""

    results: dict[str, QatResult]

    def render(self) -> str:
        rows = [
            [
                name,
                f"{res.ppl_fp:.3f}",
                f"{res.ppl_ptq:.3f} ({res.ptq_degradation * 100:+.1f}%)",
                f"{res.ppl_qat:.3f} ({res.qat_degradation * 100:+.1f}%)",
                f"{res.recovered_fraction * 100:.0f}%",
            ]
            for name, res in self.results.items()
        ]
        return format_table(
            ["combination", "FP PPL", "PTQ PPL", "QAT PPL", "recovered"],
            rows,
            title=f"Anda QAT recovery ({QAT_STEPS} fine-tune steps, {DATASET})",
        )


def _study_model() -> tuple[CausalLM, "object"]:
    """A freshly trained compact model (separate from the shared zoo —
    QAT mutates weights in place)."""
    config = ModelConfig(
        name="qat-study",
        family="opt",
        n_layers=3,
        d_model=96,
        n_heads=4,
        ffn_dim=192,
        max_seq_len=128,
        seed=17,
    )
    corpus = load_corpus(DATASET)
    model = CausalLM(config)
    train_language_model(
        model, corpus.train_tokens, steps=220, batch_size=12, seq_len=96, seed=2
    )
    return model, corpus


def run(combinations: tuple[PrecisionCombination, ...] = COMBINATIONS) -> QatStudyResult:
    """Measure QAT recovery for each aggressive combination."""
    results: dict[str, QatResult] = {}
    for combination in combinations:
        model, corpus = _study_model()  # fresh weights per combination
        eval_sequences = sequence_windows(
            corpus.validation_tokens, seq_len=96, n_sequences=16, seed=9
        )
        results[str(combination)] = qat_recovery(
            model,
            corpus.train_tokens,
            eval_sequences,
            combination,
            steps=QAT_STEPS,
            learning_rate=4e-4,
            batch_size=12,
            seq_len=96,
        )
    return QatStudyResult(results=results)
