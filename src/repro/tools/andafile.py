"""CLI: compress numpy tensors through the Anda memory image.

Usage::

    python -m repro.tools.andafile compress  acts.npy -m 6 -o acts.anda
    python -m repro.tools.andafile inspect   acts.anda
    python -m repro.tools.andafile decompress acts.anda -o acts_back.npy

``compress`` reports the achieved footprint vs FP16 and the maximum
absolute encode error; ``inspect`` prints the header and per-group
statistics without decoding the payload into floats.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core import fp16
from repro.core.anda import AndaTensor
from repro.core.serialize import dumps, loads


def _load_tensor(path: Path) -> np.ndarray:
    array = np.load(path)
    if array.ndim < 1:
        array = array.reshape(1)
    return np.asarray(array, dtype=np.float32)


def cmd_compress(args: argparse.Namespace) -> int:
    source = _load_tensor(Path(args.input))
    tensor = AndaTensor.from_float(source, args.mantissa_bits, rounding=args.rounding)
    payload = dumps(tensor)
    output = Path(args.output or Path(args.input).with_suffix(".anda"))
    output.write_bytes(payload)

    fp16_bytes = source.size * 2
    error = float(np.abs(tensor.decode() - fp16.round_trip(source)).max())
    print(f"wrote {output} ({len(payload)} bytes)")
    print(f"shape {tensor.shape}, M={tensor.mantissa_bits}, "
          f"{tensor.n_groups} groups")
    print(f"footprint: {len(payload) / fp16_bytes * 100:.1f}% of FP16 "
          f"({fp16_bytes} bytes)")
    print(f"max abs encode error vs FP16: {error:.6g}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    tensor = loads(Path(args.input).read_bytes())
    exponents = tensor.store.exponents
    print(f"Anda image: shape {tensor.shape}, M={tensor.mantissa_bits}, "
          f"rounding={tensor.rounding}")
    print(f"groups: {tensor.n_groups} "
          f"(pad {tensor.layout.pad} elements per row)")
    print(f"words per group: {tensor.store.words_per_group()} x 64 bits")
    print(f"shared exponent range: [{int(exponents.min())}, "
          f"{int(exponents.max())}]")
    print(f"storage: {tensor.storage_bits() / 8:.0f} bytes payload, "
          f"{tensor.compression_ratio():.2f}x vs FP16")
    return 0


def cmd_decompress(args: argparse.Namespace) -> int:
    tensor = loads(Path(args.input).read_bytes())
    output = Path(args.output or Path(args.input).with_suffix(".npy"))
    np.save(output, tensor.decode())
    print(f"wrote {output} (float32, shape {tensor.shape})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.andafile", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compress = commands.add_parser("compress", help="encode a .npy tensor")
    compress.add_argument("input")
    compress.add_argument("-m", "--mantissa-bits", type=int, default=8)
    compress.add_argument("-r", "--rounding",
                          choices=("truncate", "nearest", "stochastic"),
                          default="truncate")
    compress.add_argument("-o", "--output")
    compress.set_defaults(handler=cmd_compress)

    inspect = commands.add_parser("inspect", help="describe an .anda image")
    inspect.add_argument("input")
    inspect.set_defaults(handler=cmd_inspect)

    decompress = commands.add_parser("decompress", help="decode to .npy")
    decompress.add_argument("input")
    decompress.add_argument("-o", "--output")
    decompress.set_defaults(handler=cmd_decompress)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
