"""Command-line tools built on the repro library.

* ``python -m repro.tools.andafile`` — compress / inspect / decompress
  ``.npy`` tensors through the Anda binary format.
"""
