"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so editable
installs also work in offline environments whose setuptools predates
PEP 660 wheel-less editables (``pip install -e . --no-use-pep517
--no-build-isolation``).  Networked environments (CI) use the standard
``pip install -e .`` path.
"""

from setuptools import setup

setup()
